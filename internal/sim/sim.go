// Package sim provides the discrete-event simulation kernel underlying the
// gem5-Aladdin reproduction: an event queue with deterministic ordering,
// picosecond-resolution virtual time, and clock-domain helpers.
//
// All components in the SoC model (bus, DRAM, caches, DMA engine, the
// accelerator datapath) schedule work on a shared *Engine. Two events at the
// same tick fire in the order they were scheduled, which makes every
// simulation run bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"

	"gem5aladdin/internal/obs"
)

// Tick is a point in virtual time. One tick is one picosecond, which lets
// non-commensurate clock domains (e.g. a 667 MHz CPU and a 100 MHz
// accelerator) coexist without rounding drift over the lengths of run this
// simulator targets.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * 1000
	Millisecond Tick = 1000 * 1000 * 1000
)

// Nanos reports t as a floating-point nanosecond count, for reporting.
func (t Tick) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros reports t as a floating-point microsecond count, for reporting.
func (t Tick) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the tick as nanoseconds.
func (t Tick) String() string { return fmt.Sprintf("%.1fns", t.Nanos()) }

// Event is a scheduled callback.
type event struct {
	when Tick
	seq  uint64 // tie-break: schedule order
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Tick
	seq    uint64
	events eventHeap
	fired  uint64
	probe  *obs.Probe
}

// NewEngine returns an empty simulation engine at tick 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Tick { return e.now }

// EventsFired reports how many events have executed, for instrumentation.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many events are waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// SetProbe attaches an observability probe that, when enabled, receives
// one instant event per executed simulation event. With no listeners the
// cost in Step is a single branch (see BenchmarkEngineDispatch*).
func (e *Engine) SetProbe(p *obs.Probe) { e.probe = p }

// RegisterStats registers the engine's counters under prefix.
func (e *Engine) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".events_fired", "simulation events executed", e.EventsFired)
	reg.CounterFunc(prefix+".ticks", "final virtual time in ticks (ps)",
		func() uint64 { return uint64(e.now) })
}

// Schedule runs fn at absolute time when. Scheduling in the past panics:
// it always indicates a component bug.
func (e *Engine) Schedule(when Tick, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// After runs fn delta ticks from now.
func (e *Engine) After(delta Tick, fn func()) { e.Schedule(e.now+delta, fn) }

// Step fires the single earliest pending event and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	e.fired++
	if e.probe.Enabled() {
		e.probe.Fire(obs.Event{Name: "event", Start: uint64(e.now), End: uint64(e.now)})
	}
	ev.fn()
	return true
}

// Run fires events until the queue drains and returns the final time.
func (e *Engine) Run() Tick {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= deadline. Events beyond the deadline
// stay queued; the engine's clock advances to at most deadline.
func (e *Engine) RunUntil(deadline Tick) {
	for len(e.events) > 0 && e.events[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Clock describes a clock domain with a fixed period.
type Clock struct {
	Period Tick // ticks per cycle
}

// NewClockHz builds a clock from a frequency in hertz.
func NewClockHz(hz float64) Clock {
	if hz <= 0 {
		panic("sim: non-positive clock frequency")
	}
	return Clock{Period: Tick(1e12/hz + 0.5)}
}

// Cycles converts a cycle count to ticks.
func (c Clock) Cycles(n uint64) Tick { return Tick(n) * c.Period }

// CyclesAt reports how many full cycles have elapsed at time t.
func (c Clock) CyclesAt(t Tick) uint64 { return uint64(t / c.Period) }

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Tick) Tick {
	if r := t % c.Period; r != 0 {
		return t + c.Period - r
	}
	return t
}

// CyclesCeil reports the minimum whole cycles covering d ticks.
func (c Clock) CyclesCeil(d Tick) uint64 {
	return uint64((d + c.Period - 1) / c.Period)
}
