package sim

import (
	"container/heap"
	"testing"

	"gem5aladdin/internal/obs"
)

// chainEvents schedules n self-rescheduling events and drains the engine,
// exercising the Step hot path.
func chainEvents(e *Engine, n int) {
	remaining := n
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			e.After(Nanosecond, step)
		}
	}
	e.After(Nanosecond, step)
	e.Run()
}

// BenchmarkEngineDispatchBare measures event dispatch with no probe
// attached — the baseline every configuration without -trace-out pays.
func BenchmarkEngineDispatchBare(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	chainEvents(e, b.N)
}

// BenchmarkEngineDispatchProbeDisabled measures dispatch with a probe
// attached but no listeners subscribed: the guard must reduce to a single
// branch, so this should track the bare benchmark within noise (the <2%
// overhead budget for tracing-disabled runs).
func BenchmarkEngineDispatchProbeDisabled(b *testing.B) {
	e := NewEngine()
	e.SetProbe(&obs.Probe{})
	b.ReportAllocs()
	chainEvents(e, b.N)
}

// BenchmarkEngineDispatchProbeEnabled measures dispatch with a live
// listener, bounding what -trace-out costs per event.
func BenchmarkEngineDispatchProbeEnabled(b *testing.B) {
	e := NewEngine()
	p := &obs.Probe{}
	var sink uint64
	p.Listen(func(ev obs.Event) { sink += ev.Start })
	e.SetProbe(p)
	b.ReportAllocs()
	chainEvents(e, b.N)
	_ = sink
}

// --- container/heap baseline ---
//
// baselineQueue replicates the pre-rewrite event queue: container/heap over
// a slice, with the `any` boxing its interface demands on every Push and
// Pop. It stays in-tree so the speedup recorded in BENCH_sim.json is
// reproducible on any machine with a single `go test -bench` run.

type baselineHeap []event

func (h baselineHeap) Len() int { return len(h) }
func (h baselineHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h baselineHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *baselineHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *baselineHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

type baselineQueue struct {
	now    Tick
	seq    uint64
	events baselineHeap
}

func (e *baselineQueue) after(delta Tick, fn func()) {
	e.seq++
	heap.Push(&e.events, event{when: e.now + delta, seq: e.seq, fn: fn})
}

func (e *baselineQueue) run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.when
		ev.fn()
	}
}

// BenchmarkEngineDispatchBaselineHeap is the container/heap reference the
// acceptance gate compares BenchmarkEngineDispatchBare against (the
// rewritten queue must be at least 20% faster).
func BenchmarkEngineDispatchBaselineHeap(b *testing.B) {
	e := &baselineQueue{}
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			e.after(Nanosecond, step)
		}
	}
	b.ReportAllocs()
	e.after(Nanosecond, step)
	e.run()
}

// TestSteadyStateZeroAllocsPerEvent gates the tentpole guarantee: once the
// queue's backing storage has warmed up, scheduling and dispatching events
// through pre-bound handles allocates nothing.
func TestSteadyStateZeroAllocsPerEvent(t *testing.T) {
	e := NewEngine()
	remaining := 0
	var ev *Event
	ev = NewEvent(func() {
		remaining--
		if remaining > 0 {
			e.AfterEvent(Nanosecond, ev)
		}
	})
	run := func(n int) {
		remaining = n
		e.AfterEvent(Nanosecond, ev)
		e.Run()
	}
	run(10000) // warm the heap and FIFO capacity
	if allocs := testing.AllocsPerRun(10, func() { run(1000) }); allocs != 0 {
		t.Fatalf("steady-state dispatch allocates: %.1f allocs per 1000 events, want 0", allocs)
	}
}

// TestDisabledProbeAddsNoAllocations pins the disabled-probe guarantee
// deterministically (benchmarks can be noisy in CI): firing thousands of
// events through an attached-but-listenerless probe must allocate nothing
// beyond what the bare engine allocates for its own event heap.
func TestDisabledProbeAddsNoAllocations(t *testing.T) {
	run := func(p *obs.Probe) float64 {
		return testing.AllocsPerRun(10, func() {
			e := NewEngine()
			e.SetProbe(p)
			chainEvents(e, 1000)
		})
	}
	bare := run(nil)
	disabled := run(&obs.Probe{})
	if disabled > bare {
		t.Fatalf("disabled probe allocates: %.1f allocs/run vs %.1f bare", disabled, bare)
	}
}
