package sim

import (
	"testing"

	"gem5aladdin/internal/obs"
)

// chainEvents schedules n self-rescheduling events and drains the engine,
// exercising the Step hot path.
func chainEvents(e *Engine, n int) {
	remaining := n
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			e.After(Nanosecond, step)
		}
	}
	e.After(Nanosecond, step)
	e.Run()
}

// BenchmarkEngineDispatchBare measures event dispatch with no probe
// attached — the baseline every configuration without -trace-out pays.
func BenchmarkEngineDispatchBare(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	chainEvents(e, b.N)
}

// BenchmarkEngineDispatchProbeDisabled measures dispatch with a probe
// attached but no listeners subscribed: the guard must reduce to a single
// branch, so this should track the bare benchmark within noise (the <2%
// overhead budget for tracing-disabled runs).
func BenchmarkEngineDispatchProbeDisabled(b *testing.B) {
	e := NewEngine()
	e.SetProbe(&obs.Probe{})
	b.ReportAllocs()
	chainEvents(e, b.N)
}

// BenchmarkEngineDispatchProbeEnabled measures dispatch with a live
// listener, bounding what -trace-out costs per event.
func BenchmarkEngineDispatchProbeEnabled(b *testing.B) {
	e := NewEngine()
	p := &obs.Probe{}
	var sink uint64
	p.Listen(func(ev obs.Event) { sink += ev.Start })
	e.SetProbe(p)
	b.ReportAllocs()
	chainEvents(e, b.N)
	_ = sink
}

// TestDisabledProbeAddsNoAllocations pins the disabled-probe guarantee
// deterministically (benchmarks can be noisy in CI): firing thousands of
// events through an attached-but-listenerless probe must allocate nothing
// beyond what the bare engine allocates for its own event heap.
func TestDisabledProbeAddsNoAllocations(t *testing.T) {
	run := func(p *obs.Probe) float64 {
		return testing.AllocsPerRun(10, func() {
			e := NewEngine()
			e.SetProbe(p)
			chainEvents(e, 1000)
		})
	}
	bare := run(nil)
	disabled := run(&obs.Probe{})
	if disabled > bare {
		t.Fatalf("disabled probe allocates: %.1f allocs/run vs %.1f bare", disabled, bare)
	}
}
