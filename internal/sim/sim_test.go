package sim

import (
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at %v, want 0", got)
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v, want 30", e.Now())
	}
}

func TestEngineSameTickFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-tick events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 5 {
			e.After(7, rec)
		}
	}
	e.After(7, rec)
	e.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 35 {
		t.Fatalf("final time %v, want 35", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Tick
	for _, tk := range []Tick{10, 20, 30, 40} {
		tk := tk
		e.Schedule(tk, func() { fired = append(fired, tk) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired = %v", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1234)
	if e.Now() != 1234 {
		t.Fatalf("now = %v, want 1234", e.Now())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and equal times fire in schedule order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine()
		type hit struct {
			when Tick
			idx  int
		}
		var got []hit
		for i, tm := range times {
			i, when := i, Tick(tm)
			e.Schedule(when, func() { got = append(got, hit{when, i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		want := make([]hit, len(got))
		copy(want, got)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].when != want[b].when {
				return want[a].when < want[b].when
			}
			return want[a].idx < want[b].idx
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClockHz(t *testing.T) {
	c := NewClockHz(100e6) // 100 MHz -> 10ns
	if c.Period != 10*Nanosecond {
		t.Fatalf("period = %v, want 10ns", c.Period)
	}
	if c.Cycles(3) != 30*Nanosecond {
		t.Fatalf("Cycles(3) = %v", c.Cycles(3))
	}
	cpu := NewClockHz(667e6)
	if cpu.Period != 1499 {
		t.Fatalf("667MHz period = %v ps, want 1499", cpu.Period)
	}
}

func TestClockNextEdge(t *testing.T) {
	c := Clock{Period: 10}
	cases := []struct{ in, want Tick }{{0, 0}, {1, 10}, {9, 10}, {10, 10}, {11, 20}}
	for _, tc := range cases {
		if got := c.NextEdge(tc.in); got != tc.want {
			t.Errorf("NextEdge(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockCyclesCeil(t *testing.T) {
	c := Clock{Period: 10}
	cases := []struct {
		in   Tick
		want uint64
	}{{0, 0}, {1, 1}, {10, 1}, {11, 2}, {100, 10}}
	for _, tc := range cases {
		if got := c.CyclesCeil(tc.in); got != tc.want {
			t.Errorf("CyclesCeil(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClockHz(0) did not panic")
		}
	}()
	NewClockHz(0)
}

func TestTickConversions(t *testing.T) {
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Fatalf("Micros = %v", got)
	}
	if got := (2500 * Picosecond).Nanos(); got != 2.5 {
		t.Fatalf("Nanos = %v", got)
	}
	if s := (1500 * Picosecond).String(); s != "1.5ns" {
		t.Fatalf("String = %q", s)
	}
}

// TestPoppedEventsReleaseClosures is the regression test for the event-queue
// memory retention bug: popped events used to keep their fn closure reachable
// through the queue slice's spare capacity, pinning everything the closure
// captured for the life of the engine. Popping must clear the vacated slot.
func TestPoppedEventsReleaseClosures(t *testing.T) {
	const n = 64
	e := NewEngine()
	var freed int64
	for i := 0; i < n; i++ {
		payload := new([1 << 16]byte)
		runtime.SetFinalizer(payload, func(*[1 << 16]byte) { atomic.AddInt64(&freed, 1) })
		p := payload
		// Spread events across both queue paths: same-tick FIFO and heap.
		if i%2 == 0 {
			e.Schedule(Tick(i), func() { p[0] = 1 })
		} else {
			e.Schedule(0, func() { p[1] = 1 })
		}
	}
	e.Run()
	for attempt := 0; attempt < 50 && atomic.LoadInt64(&freed) < n; attempt++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := atomic.LoadInt64(&freed); got != n {
		t.Fatalf("only %d/%d popped closures were collectable; queue retains fired events", got, n)
	}
	// The engine (and its spare queue capacity) stays live for the whole
	// test, so any surviving payload is pinned by a queue slot.
	runtime.KeepAlive(e)
}

// TestEngineScheduleAtNowInsideEvent pins the same-tick fast path: events
// scheduled at the current tick from inside a firing event run this tick,
// after every previously scheduled event at that tick, in schedule order —
// including events that were already sitting in the heap for that tick.
func TestEngineScheduleAtNowInsideEvent(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() {
		order = append(order, 0)
		e.Schedule(10, func() { // same-tick, scheduled mid-fire
			order = append(order, 2)
			e.Schedule(10, func() { order = append(order, 4) })
		})
		e.Schedule(10, func() { order = append(order, 3) })
	})
	e.Schedule(10, func() { order = append(order, 1) }) // pre-queued heap entry
	e.Schedule(20, func() { order = append(order, 5) })
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("final time %v, want 20", e.Now())
	}
}

// TestEngineZeroDelayAfter exercises After(0, ...) self-chains, the
// degenerate schedule-at-now pattern bus grant cascades produce.
func TestEngineZeroDelayAfter(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 100 {
			e.After(0, chain)
		}
	}
	e.After(0, chain)
	e.Run()
	if hits != 100 {
		t.Fatalf("hits = %d, want 100", hits)
	}
	if e.Now() != 5 {
		t.Fatalf("final time %v, want 5", e.Now())
	}
}

// TestEngineInterleavedClockDomains runs two free-running tick loops in
// non-commensurate clock domains (667 MHz CPU vs 100 MHz accelerator) and
// checks time monotonicity, per-domain edge alignment, and the deterministic
// interleave count.
func TestEngineInterleavedClockDomains(t *testing.T) {
	e := NewEngine()
	cpu := NewClockHz(667e6)  // 1499 ps period
	accel := NewClockHz(1e8)  // 10000 ps period
	stop := Tick(Microsecond) // 1 us
	counts := map[string]int{}
	var last Tick
	tick := func(name string, c Clock) func() {
		var fn func()
		fn = func() {
			now := e.Now()
			if now < last {
				t.Fatalf("%s: time went backwards: %v < %v", name, now, last)
			}
			last = now
			if now%c.Period != 0 {
				t.Fatalf("%s fired off its clock edge at %v", name, now)
			}
			counts[name]++
			if next := now + c.Period; next <= stop {
				e.Schedule(next, fn)
			}
		}
		return fn
	}
	e.Schedule(0, tick("cpu", cpu))
	e.Schedule(0, tick("accel", accel))
	e.Run()
	wantCPU := int(stop/cpu.Period) + 1
	wantAccel := int(stop/accel.Period) + 1
	if counts["cpu"] != wantCPU || counts["accel"] != wantAccel {
		t.Fatalf("ticks = %v, want cpu=%d accel=%d", counts, wantCPU, wantAccel)
	}
}

// TestEngineTickOverflow covers overflow-adjacent Tick arithmetic: absolute
// scheduling near MaxTick works, and After deltas that would wrap virtual
// time panic instead of silently scheduling in the past.
func TestEngineTickOverflow(t *testing.T) {
	e := NewEngine()
	var fired []Tick
	e.Schedule(MaxTick, func() { fired = append(fired, e.Now()) })
	e.Schedule(MaxTick-1, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 2 || fired[0] != MaxTick-1 || fired[1] != MaxTick {
		t.Fatalf("fired = %v, want [MaxTick-1 MaxTick]", fired)
	}
	if e.Now() != MaxTick {
		t.Fatalf("now = %v, want MaxTick", e.Now())
	}
	// Rescheduling at the clamp is still legal (when == now).
	e.Schedule(MaxTick, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("schedule at now==MaxTick did not fire")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("After with overflowing delta did not panic")
		}
	}()
	e.After(1, func() {})
}

// TestEngineRunUntilWithSameTickEvents checks that RunUntil fires same-tick
// FIFO events at the deadline boundary and leaves later events queued.
func TestEngineRunUntilWithSameTickEvents(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(10, func() {
		fired = append(fired, 0)
		e.Schedule(10, func() { fired = append(fired, 1) })
	})
	e.Schedule(11, func() { fired = append(fired, 2) })
	e.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want [0 1]", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if next, ok := e.NextEventTime(); !ok || next != 11 {
		t.Fatalf("NextEventTime = %v,%v, want 11,true", next, ok)
	}
}

func TestEngineStress(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	var last Tick
	n := 0
	for i := 0; i < 5000; i++ {
		e.Schedule(Tick(rng.Intn(100000)), func() {
			if e.Now() < last {
				t.Error("time went backwards")
			}
			last = e.Now()
			n++
		})
	}
	e.Run()
	if n != 5000 {
		t.Fatalf("fired %d events, want 5000", n)
	}
	if e.EventsFired() != 5000 {
		t.Fatalf("EventsFired = %d", e.EventsFired())
	}
}
