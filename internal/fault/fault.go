// Package fault is the deterministic fault-injection layer of the SoC
// substrate. It models the imperfect hardware the rest of the simulator
// idealizes away: radiation-induced bit flips in DRAM rows and local SRAM
// (scratchpad banks, cache data arrays) behind a SECDED ECC code, NACKed or
// dropped bus transactions with bounded retry and exponential backoff, and
// DMA descriptor timeouts with retry-or-abort semantics.
//
// Everything is driven by a single seed. Each fault class draws from its
// own splitmix64 stream derived from that seed, so the decisions made for
// one class never depend on how often another class was consulted; combined
// with the event engine's deterministic ordering, the same seed always
// produces the same injected-fault log, the same recovery actions, and the
// same final cycle count.
//
// The Injector is nil-safe: components hold a *Injector that is nil when
// fault injection is off, and every decision method on a nil receiver
// reports "no fault" without touching any state, so the fault-free hot path
// pays a single branch.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gem5aladdin/internal/obs"
	"gem5aladdin/internal/sim"
)

// Config selects which faults to inject and how recovery is parameterized.
// The zero value disables every fault class; soc.Config embeds one of these
// as its Faults block.
type Config struct {
	// Seed drives every per-class random stream. Seed 0 is a valid seed
	// (the class streams are derived by mixing, not used raw).
	Seed uint64

	// DRAMBitProb is the per-access probability of a bit flip in the DRAM
	// row being read or written.
	DRAMBitProb float64
	// SpadBitProb is the per-access probability of a bit flip in the
	// scratchpad bank word being accessed.
	SpadBitProb float64
	// CacheBitProb is the per-access probability of a bit flip in the cache
	// line being accessed.
	CacheBitProb float64
	// DoubleBitFrac is the fraction of injected memory flips that hit two
	// bits of one ECC word. SECDED corrects singles transparently; doubles
	// are detected and reported but not corrected.
	DoubleBitFrac float64

	// BusNackProb is the per-transaction probability that the address phase
	// is NACKed (target busy, parity error, credit loss) and the master
	// must re-arbitrate.
	BusNackProb float64
	// BusRetryLimit bounds how many times one transaction is retried after
	// a NACK before it is dropped entirely.
	BusRetryLimit int
	// BusBackoff is the base retry delay; attempt k waits BusBackoff<<(k-1)
	// (exponential backoff, capped at 16 doublings).
	BusBackoff sim.Tick

	// DMATimeout, when nonzero, bounds how long the DMA engine waits for
	// one descriptor's bus transaction before declaring it lost.
	DMATimeout sim.Tick
	// DMARetries is how many times a timed-out descriptor is reissued
	// before the engine aborts the transfer.
	DMARetries int
}

// Enabled reports whether any fault class is active. A disabled config
// (the zero value) yields a nil Injector and a bit-identical simulation.
func (c Config) Enabled() bool {
	return c.DRAMBitProb > 0 || c.SpadBitProb > 0 || c.CacheBitProb > 0 ||
		c.BusNackProb > 0 || c.DMATimeout > 0
}

// Site identifies where a fault was injected or handled.
type Site uint8

// Injection sites.
const (
	SiteDRAM Site = iota
	SiteSpad
	SiteCache
	SiteBus
	SiteDMA
	numSites
)

var siteNames = [...]string{"dram", "spad", "cache", "bus", "dma"}

// String names the site.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Outcome classifies one injected fault and what became of it.
type Outcome uint8

// Fault outcomes.
const (
	// OutcomeNone: no fault injected.
	OutcomeNone Outcome = iota
	// OutcomeCorrected: single-bit flip corrected by SECDED.
	OutcomeCorrected
	// OutcomeDetected: double-bit flip detected (uncorrectable) by SECDED.
	OutcomeDetected
	// OutcomeNack: bus transaction NACKed, will be retried.
	OutcomeNack
	// OutcomeDrop: bus transaction dropped after retries were exhausted.
	OutcomeDrop
	// OutcomeTimeout: DMA descriptor timed out waiting for the bus.
	OutcomeTimeout
	// OutcomeRetry: DMA descriptor reissued after a timeout.
	OutcomeRetry
	// OutcomeAbort: DMA transfer aborted after retries were exhausted.
	OutcomeAbort
)

var outcomeNames = [...]string{
	"none", "corrected-single", "detected-double",
	"nack", "drop", "timeout", "retry", "abort",
}

// String names the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Record is one entry of the injected-fault log. Same seed, same config,
// same workload => byte-identical log, which the reproducibility regression
// test pins.
type Record struct {
	Seq     uint64
	Tick    sim.Tick // engine time (accelerator cycle for spad accesses)
	Site    Site
	Outcome Outcome
	Addr    uint64
	Attempt int // retry attempt number for bus/DMA records
}

// String formats one log line.
func (r Record) String() string {
	return fmt.Sprintf("#%d @%d %s %s addr=%#x attempt=%d",
		r.Seq, uint64(r.Tick), r.Site, r.Outcome, r.Addr, r.Attempt)
}

// Stats aggregates injector activity.
type Stats struct {
	Injected         uint64 // memory bit flips injected (singles + doubles)
	CorrectedSingles uint64 // flips corrected by SECDED
	DetectedDoubles  uint64 // uncorrectable flips detected by SECDED
	BusNacks         uint64 // transactions NACKed at the address phase
	BusRetries       uint64 // re-arbitrations after a NACK
	BusDrops         uint64 // transactions dropped, retries exhausted
	DMATimeouts      uint64 // descriptors that timed out
	DMARetries       uint64 // descriptors reissued after a timeout
	DMAAborts        uint64 // transfers aborted, retries exhausted
}

// Recovered sums faults the system absorbed without losing work.
func (s Stats) Recovered() uint64 {
	return s.CorrectedSingles + s.BusRetries + s.DMARetries
}

// maxLog bounds the in-memory fault log; runs hot enough to overflow it
// still count every fault, and LogTruncated reports the overflow.
const maxLog = 1 << 16

// Injector makes every fault decision for one simulation. It is not safe
// for concurrent use; each engine owns its own (dse sweeps build one per
// design point).
type Injector struct {
	cfg   Config
	rng   [numSites]uint64 // per-class splitmix64 state
	stats Stats
	log   []Record
	lost  uint64 // records dropped once the log filled
	seq   uint64
	probe *obs.Probe
}

// New builds an injector, or returns nil when cfg enables nothing, so the
// result can be stored and branch-checked directly.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	i := &Injector{cfg: cfg}
	for s := range i.rng {
		// Derive per-class streams by mixing the seed with the class id;
		// splitmix64 output of distinct inputs gives independent streams.
		i.rng[s] = mix64(cfg.Seed + uint64(s)*0x9e3779b97f4a7c15)
	}
	return i
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the site's stream.
func (i *Injector) next(s Site) uint64 {
	i.rng[s] += 0x9e3779b97f4a7c15
	z := i.rng[s]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a uniform float in [0,1) from the site's stream.
func (i *Injector) roll(s Site) float64 {
	return float64(i.next(s)>>11) / (1 << 53)
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Stats returns a copy of the counters; zero-valued on a nil injector.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// Log returns the injected-fault log in injection order.
func (i *Injector) Log() []Record {
	if i == nil {
		return nil
	}
	return i.log
}

// LogTruncated reports how many records were dropped after the log filled.
func (i *Injector) LogTruncated() uint64 {
	if i == nil {
		return 0
	}
	return i.lost
}

// AttachProbe wires an observability probe; every injected fault fires one
// instant event named by its outcome, with the site as lane.
func (i *Injector) AttachProbe(p *obs.Probe) {
	if i != nil {
		i.probe = p
	}
}

// record appends one fault to the log, counters aside.
func (i *Injector) record(site Site, out Outcome, tick sim.Tick, addr uint64, attempt int) {
	i.seq++
	if len(i.log) < maxLog {
		i.log = append(i.log, Record{Seq: i.seq, Tick: tick, Site: site,
			Outcome: out, Addr: addr, Attempt: attempt})
	} else {
		i.lost++
	}
	if i.probe.Enabled() {
		i.probe.Fire(obs.Event{Name: site.String() + "-" + out.String(),
			Start: uint64(tick), End: uint64(tick), Lane: int32(site), Bytes: addr})
	}
}

// ECC rolls for a bit flip in the memory word behind site (SiteDRAM,
// SiteSpad, or SiteCache) and runs it through the SECDED model: singles are
// corrected transparently, doubles detected and reported. tick is the
// current engine time (spad passes its accelerator cycle).
func (i *Injector) ECC(site Site, tick sim.Tick, addr uint64) Outcome {
	if i == nil {
		return OutcomeNone
	}
	var p float64
	switch site {
	case SiteDRAM:
		p = i.cfg.DRAMBitProb
	case SiteSpad:
		p = i.cfg.SpadBitProb
	case SiteCache:
		p = i.cfg.CacheBitProb
	}
	if p <= 0 || i.roll(site) >= p {
		return OutcomeNone
	}
	i.stats.Injected++
	out := OutcomeCorrected
	if i.cfg.DoubleBitFrac > 0 && i.roll(site) < i.cfg.DoubleBitFrac {
		out = OutcomeDetected
		i.stats.DetectedDoubles++
	} else {
		i.stats.CorrectedSingles++
	}
	i.record(site, out, tick, addr, 0)
	return out
}

// BusNack rolls for an address-phase NACK of one bus transaction.
func (i *Injector) BusNack(tick sim.Tick, addr uint64, attempt int) bool {
	if i == nil || i.cfg.BusNackProb <= 0 {
		return false
	}
	if i.roll(SiteBus) >= i.cfg.BusNackProb {
		return false
	}
	i.stats.BusNacks++
	i.record(SiteBus, OutcomeNack, tick, addr, attempt)
	return true
}

// BusRetryLimit returns how many retries a NACKed transaction gets.
func (i *Injector) BusRetryLimit() int { return i.cfg.BusRetryLimit }

// BusBackoff returns the exponential backoff before retry attempt k (1-based).
func (i *Injector) BusBackoff(attempt int) sim.Tick {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return i.cfg.BusBackoff << uint(shift)
}

// CountBusRetry records one post-NACK re-arbitration.
func (i *Injector) CountBusRetry() {
	if i != nil {
		i.stats.BusRetries++
	}
}

// CountBusDrop records a transaction abandoned after exhausting retries.
func (i *Injector) CountBusDrop(tick sim.Tick, addr uint64, attempt int) {
	if i == nil {
		return
	}
	i.stats.BusDrops++
	i.record(SiteBus, OutcomeDrop, tick, addr, attempt)
}

// DMATimeout returns the descriptor timeout, 0 when disabled.
func (i *Injector) DMATimeout() sim.Tick {
	if i == nil {
		return 0
	}
	return i.cfg.DMATimeout
}

// DMARetryLimit returns how many reissues a timed-out descriptor gets.
func (i *Injector) DMARetryLimit() int {
	if i == nil {
		return 0
	}
	return i.cfg.DMARetries
}

// CountDMATimeout records one descriptor timeout.
func (i *Injector) CountDMATimeout(tick sim.Tick, addr uint64, attempt int) {
	if i == nil {
		return
	}
	i.stats.DMATimeouts++
	i.record(SiteDMA, OutcomeTimeout, tick, addr, attempt)
}

// CountDMARetry records one descriptor reissue after a timeout.
func (i *Injector) CountDMARetry(tick sim.Tick, addr uint64, attempt int) {
	if i == nil {
		return
	}
	i.stats.DMARetries++
	i.record(SiteDMA, OutcomeRetry, tick, addr, attempt)
}

// CountDMAAbort records a transfer aborted after retries were exhausted.
func (i *Injector) CountDMAAbort(tick sim.Tick, addr uint64, attempt int) {
	if i == nil {
		return
	}
	i.stats.DMAAborts++
	i.record(SiteDMA, OutcomeAbort, tick, addr, attempt)
}

// RegisterStats registers the injector counters under prefix.
func (i *Injector) RegisterStats(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+".injected", "memory bit flips injected",
		func() uint64 { return i.stats.Injected })
	reg.CounterFunc(prefix+".corrected_singles", "single-bit flips corrected by SECDED",
		func() uint64 { return i.stats.CorrectedSingles })
	reg.CounterFunc(prefix+".detected_doubles", "double-bit flips detected by SECDED",
		func() uint64 { return i.stats.DetectedDoubles })
	reg.CounterFunc(prefix+".bus_nacks", "bus transactions NACKed",
		func() uint64 { return i.stats.BusNacks })
	reg.CounterFunc(prefix+".bus_retries", "bus transactions re-arbitrated after a NACK",
		func() uint64 { return i.stats.BusRetries })
	reg.CounterFunc(prefix+".bus_drops", "bus transactions dropped after retry exhaustion",
		func() uint64 { return i.stats.BusDrops })
	reg.CounterFunc(prefix+".dma_timeouts", "DMA descriptors that timed out",
		func() uint64 { return i.stats.DMATimeouts })
	reg.CounterFunc(prefix+".dma_retries", "DMA descriptors reissued after a timeout",
		func() uint64 { return i.stats.DMARetries })
	reg.CounterFunc(prefix+".dma_aborts", "DMA transfers aborted after retry exhaustion",
		func() uint64 { return i.stats.DMAAborts })
	reg.CounterFunc(prefix+".log_truncated", "fault log records dropped after the log filled",
		func() uint64 { return i.lost })
}

// ParseSpec parses the CLI fault spec: a comma-separated key=value list.
// Keys: seed, dram, spad, cache, double (probabilities), bus (NACK
// probability), retries (bus retry limit), backoff (ns), dma-timeout (ns),
// dma-retries. Example:
//
//	seed=7,dram=1e-6,bus=0.01,retries=4,backoff=100,dma-timeout=50000,dma-retries=2
//
// An empty spec returns the zero (disabled) config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			c.Seed = u
		case "retries", "dma-retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return c, fmt.Errorf("fault: bad %s %q", key, val)
			}
			if key == "retries" {
				c.BusRetryLimit = n
			} else {
				c.DMARetries = n
			}
		case "backoff", "dma-timeout":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return c, fmt.Errorf("fault: bad %s %q (nanoseconds)", key, val)
			}
			t := sim.Tick(f * float64(sim.Nanosecond))
			if key == "backoff" {
				c.BusBackoff = t
			} else {
				c.DMATimeout = t
			}
		case "dram", "spad", "cache", "double", "bus":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(p) {
				return c, fmt.Errorf("fault: bad probability %s=%q", key, val)
			}
			switch key {
			case "dram":
				c.DRAMBitProb = p
			case "spad":
				c.SpadBitProb = p
			case "cache":
				c.CacheBitProb = p
			case "double":
				c.DoubleBitFrac = p
			case "bus":
				c.BusNackProb = p
			}
		default:
			return c, fmt.Errorf("fault: unknown spec key %q (want seed, dram, spad, cache, double, bus, retries, backoff, dma-timeout, dma-retries)", key)
		}
	}
	return c, nil
}

// Report renders a human-readable summary of the injected faults and their
// recovery, for CLI output after a fault-sweep run.
func (i *Injector) Report() string {
	if i == nil {
		return "faults: disabled"
	}
	s := i.stats
	var b strings.Builder
	fmt.Fprintf(&b, "faults: seed=%d injected=%d corrected=%d detected=%d",
		i.cfg.Seed, s.Injected, s.CorrectedSingles, s.DetectedDoubles)
	fmt.Fprintf(&b, " bus[nack=%d retry=%d drop=%d]", s.BusNacks, s.BusRetries, s.BusDrops)
	fmt.Fprintf(&b, " dma[timeout=%d retry=%d abort=%d]", s.DMATimeouts, s.DMARetries, s.DMAAborts)
	if counts := i.siteCounts(); len(counts) > 0 {
		b.WriteString("\n  by site:")
		for _, sc := range counts {
			fmt.Fprintf(&b, " %s=%d", sc.site, sc.n)
		}
	}
	return b.String()
}

type siteCount struct {
	site Site
	n    uint64
}

// siteCounts tallies log records per site in site order.
func (i *Injector) siteCounts() []siteCount {
	var counts [numSites]uint64
	for _, r := range i.log {
		counts[r.Site]++
	}
	var out []siteCount
	for s, n := range counts {
		if n > 0 {
			out = append(out, siteCount{Site(s), n})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].site < out[b].site })
	return out
}
