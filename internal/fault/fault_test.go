package fault

import (
	"reflect"
	"strings"
	"testing"

	"gem5aladdin/internal/sim"
)

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	if inj := New(Config{}); inj != nil {
		t.Fatalf("zero config must yield a nil injector, got %v", inj)
	}
	if inj := New(Config{Seed: 42, BusRetryLimit: 3, DMARetries: 2}); inj != nil {
		t.Fatalf("limits without probabilities must not enable injection")
	}
	if !(Config{BusNackProb: 0.1}).Enabled() {
		t.Fatalf("BusNackProb alone must enable injection")
	}
	if !(Config{DMATimeout: sim.Nanosecond}).Enabled() {
		t.Fatalf("DMATimeout alone must enable injection")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	if out := inj.ECC(SiteDRAM, 0, 0); out != OutcomeNone {
		t.Fatalf("nil.ECC = %v, want none", out)
	}
	if inj.BusNack(0, 0, 1) {
		t.Fatalf("nil.BusNack = true")
	}
	if inj.DMATimeout() != 0 || inj.DMARetryLimit() != 0 {
		t.Fatalf("nil DMA accessors must report disabled")
	}
	inj.CountBusRetry()
	inj.CountBusDrop(0, 0, 1)
	inj.CountDMATimeout(0, 0, 1)
	inj.CountDMARetry(0, 0, 1)
	inj.CountDMAAbort(0, 0, 1)
	inj.AttachProbe(nil)
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil.Stats = %+v, want zero", s)
	}
	if inj.Log() != nil || inj.LogTruncated() != 0 {
		t.Fatalf("nil log must be empty")
	}
	if inj.Report() != "faults: disabled" {
		t.Fatalf("nil.Report = %q", inj.Report())
	}
}

func TestECCAlwaysAndNever(t *testing.T) {
	// Probability 1 injects on every access; DoubleBitFrac 0 corrects all.
	inj := New(Config{DRAMBitProb: 1})
	for k := 0; k < 100; k++ {
		if out := inj.ECC(SiteDRAM, sim.Tick(k), uint64(k)); out != OutcomeCorrected {
			t.Fatalf("access %d: outcome %v, want corrected", k, out)
		}
	}
	s := inj.Stats()
	if s.Injected != 100 || s.CorrectedSingles != 100 || s.DetectedDoubles != 0 {
		t.Fatalf("stats %+v", s)
	}
	// DoubleBitFrac 1 makes every flip uncorrectable.
	inj = New(Config{SpadBitProb: 1, DoubleBitFrac: 1})
	if out := inj.ECC(SiteSpad, 0, 0); out != OutcomeDetected {
		t.Fatalf("outcome %v, want detected", out)
	}
	// A site with zero probability never draws, even on an enabled injector.
	if out := inj.ECC(SiteDRAM, 0, 0); out != OutcomeNone {
		t.Fatalf("dram outcome %v on spad-only config", out)
	}
}

// TestDeterministicStreams pins the reproducibility contract: the same seed
// and the same access sequence produce byte-identical logs and stats, and
// the per-site streams are independent of how often other sites draw.
func TestDeterministicStreams(t *testing.T) {
	cfg := Config{Seed: 7, DRAMBitProb: 0.3, SpadBitProb: 0.2, BusNackProb: 0.4,
		DoubleBitFrac: 0.5, BusRetryLimit: 2, BusBackoff: sim.Nanosecond}
	run := func(interleaveSpad bool) (Stats, []Record) {
		inj := New(cfg)
		for k := 0; k < 200; k++ {
			inj.ECC(SiteDRAM, sim.Tick(k), uint64(k)*64)
			if interleaveSpad {
				inj.ECC(SiteSpad, sim.Tick(k), uint64(k))
			}
			inj.BusNack(sim.Tick(k), uint64(k)*32, 1)
		}
		return inj.Stats(), inj.Log()
	}
	s1, l1 := run(true)
	s2, l2 := run(true)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("same seed, different logs")
	}

	// Dropping the spad draws must not change the DRAM or bus decisions:
	// each class owns its own stream.
	_, l3 := run(false)
	filter := func(log []Record, site Site) []int {
		var ticks []int
		for _, r := range log {
			if r.Site == site {
				ticks = append(ticks, int(r.Tick))
			}
		}
		return ticks
	}
	for _, site := range []Site{SiteDRAM, SiteBus} {
		if !reflect.DeepEqual(filter(l1, site), filter(l3, site)) {
			t.Fatalf("%v decisions depend on spad draw count", site)
		}
	}

	// A different seed must (overwhelmingly) give a different log.
	cfg.Seed = 8
	inj := New(cfg)
	for k := 0; k < 200; k++ {
		inj.ECC(SiteDRAM, sim.Tick(k), uint64(k)*64)
		inj.ECC(SiteSpad, sim.Tick(k), uint64(k))
		inj.BusNack(sim.Tick(k), uint64(k)*32, 1)
	}
	if reflect.DeepEqual(l1, inj.Log()) {
		t.Fatalf("seeds 7 and 8 produced identical logs")
	}
}

func TestBusBackoffExponential(t *testing.T) {
	inj := New(Config{BusNackProb: 0.5, BusBackoff: 10})
	want := []sim.Tick{10, 10, 20, 40, 80}
	for k, w := range want {
		if got := inj.BusBackoff(k); got != w {
			t.Fatalf("BusBackoff(%d) = %d, want %d", k, got, w)
		}
	}
	// Cap at 16 doublings so huge attempt counts can't overflow.
	if got, capped := inj.BusBackoff(100), sim.Tick(10<<16); got != capped {
		t.Fatalf("BusBackoff(100) = %d, want capped %d", got, capped)
	}
}

func TestLogTruncation(t *testing.T) {
	inj := New(Config{DRAMBitProb: 1})
	for k := 0; k < maxLog+50; k++ {
		inj.ECC(SiteDRAM, sim.Tick(k), uint64(k))
	}
	if len(inj.Log()) != maxLog {
		t.Fatalf("log len %d, want %d", len(inj.Log()), maxLog)
	}
	if inj.LogTruncated() != 50 {
		t.Fatalf("truncated %d, want 50", inj.LogTruncated())
	}
	if inj.Stats().Injected != maxLog+50 {
		t.Fatalf("counters must keep counting past the log cap")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		wantErr bool
	}{
		{spec: "", want: Config{}},
		{spec: "  ", want: Config{}},
		{spec: "seed=7", want: Config{Seed: 7}},
		{spec: "seed=0x10", want: Config{Seed: 16}},
		{spec: "dram=1e-6,spad=0.5,cache=0.25,double=0.1,bus=0.01",
			want: Config{DRAMBitProb: 1e-6, SpadBitProb: 0.5, CacheBitProb: 0.25,
				DoubleBitFrac: 0.1, BusNackProb: 0.01}},
		{spec: "retries=4,dma-retries=2", want: Config{BusRetryLimit: 4, DMARetries: 2}},
		{spec: "backoff=100,dma-timeout=50",
			want: Config{BusBackoff: 100 * sim.Nanosecond, DMATimeout: 50 * sim.Nanosecond}},
		{spec: " seed=1 , bus=0.5 ", want: Config{Seed: 1, BusNackProb: 0.5}},
		{spec: "seed", wantErr: true},
		{spec: "seed=abc", wantErr: true},
		{spec: "retries=-1", wantErr: true},
		{spec: "backoff=NaN", wantErr: true},
		{spec: "dram=oops", wantErr: true},
		{spec: "flux-capacitor=1", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestReportMentionsActivity(t *testing.T) {
	inj := New(Config{Seed: 3, DRAMBitProb: 1})
	inj.ECC(SiteDRAM, 0, 0)
	rep := inj.Report()
	for _, frag := range []string{"seed=3", "injected=1", "corrected=1", "dram=1"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report %q missing %q", rep, frag)
		}
	}
}
