// Package figures regenerates every table and figure of the paper's
// evaluation from the simulator. Each FigN function prints the rows or
// series the corresponding plot reports, so the paper's claims can be
// re-derived (and diffed in EXPERIMENTS.md) from a single command:
//
//	go run ./cmd/figures -fig all
//
// The functions accept a Quick flag that prunes sweep axes for fast runs;
// the full sweeps match the Fig 3 parameter table.
package figures

import (
	"context"
	"fmt"
	"io"
	"sync"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/dse"
	"gem5aladdin/internal/golden"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/report"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/stats"
	"gem5aladdin/internal/trace"
)

// Fig8Benchmarks is the eight-benchmark subset of Figs 8-10, chosen by the
// paper to span the design-space characteristics, ordered by DMA-vs-cache
// preference as in Fig 8.
func Fig8Benchmarks() []string {
	return []string{
		"aes-aes", "nw-nw", "gemm-ncubed", "stencil-stencil2d",
		"stencil-stencil3d", "md-knn", "spmv-crs", "fft-transpose",
	}
}

// Fig6Benchmarks is the DMA-optimization subset of Fig 6 (benchmarks
// spanning the Fig 2b movement range).
func Fig6Benchmarks() []string {
	return []string{
		"aes-aes", "nw-nw", "gemm-ncubed", "stencil-stencil2d",
		"md-knn", "spmv-crs", "fft-transpose",
	}
}

var (
	graphMu     sync.Mutex
	kernelCache = map[string]*soc.Compiled{}
)

// Kernel builds, compiles, and memoizes the artifact for a benchmark. Every
// figure draws from this one cache, so each benchmark is traced and
// compiled exactly once per process no matter how many figures sweep it.
func Kernel(name string) (*soc.Compiled, error) {
	graphMu.Lock()
	defer graphMu.Unlock()
	if k, ok := kernelCache[name]; ok {
		return k, nil
	}
	b, err := machsuite.ByName(name)
	if err != nil {
		return nil, err
	}
	tr, err := b.Build()
	if err != nil {
		return nil, err
	}
	k := soc.Compile(ddg.Build(tr))
	kernelCache[name] = k
	return k, nil
}

// Graph builds (and memoizes) the DDDG for a benchmark.
func Graph(name string) (*ddg.Graph, error) {
	k, err := Kernel(name)
	if err != nil {
		return nil, err
	}
	return k.Graph(), nil
}

func pctOf(part, whole sim.Tick) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func axes(quick bool) dse.SweepAxes {
	if quick {
		return dse.QuickAxes()
	}
	return dse.FullAxes()
}

// Fig1 regenerates the motivating stencil3d design-space comparison:
// isolated vs co-designed (DMA, 32-bit bus) scatter with EDP optima.
func Fig1(w io.Writer, quick bool) error {
	k, err := Kernel("stencil-stencil3d")
	if err != nil {
		return err
	}
	opt := axes(quick)
	fmt.Fprintln(w, "Figure 1: stencil3d design space, isolated vs co-designed (DMA/32b)")
	for _, mem := range []soc.MemKind{soc.Isolated, soc.DMA} {
		cfgs := dse.SpadConfigs(soc.DefaultConfig(), mem, opt.Lanes, opt.Partitions)
		space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{})
		if err != nil {
			return err
		}
		best, ok := space.EDPOptimal()
		if !ok {
			return fmt.Errorf("figures: fig 1 %s sweep: %w", mem, dse.ErrEmptySpace)
		}
		tb := stats.NewTable("design", "lanes", "banks", "time(us)", "power(mW)", "EDP(nJ*s)", "")
		for _, p := range space {
			mark := ""
			if p.Cfg == best.Cfg {
				mark = "<-- EDP optimal"
			}
			tb.Row(mem.String(), p.Cfg.Lanes, p.Cfg.Partitions,
				p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3, p.Res.EDPJs*1e9, mark)
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig2a regenerates the md-knn execution timeline at 16 lanes under the
// baseline DMA flow (the Zedboard measurement of Fig 2a).
func Fig2a(w io.Writer) error {
	k, err := Kernel("md-knn")
	if err != nil {
		return err
	}
	cfg := soc.DefaultConfig()
	cfg.Lanes, cfg.Partitions = 16, 16
	cfg.PipelinedDMA, cfg.DMATriggered = false, false
	r, err := soc.Run(k, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2a: md-knn baseline-DMA timeline, 16 lanes")
	fmt.Fprintf(w, "timeline: %s\n", report.TimelineASCII(r, 72))
	fmt.Fprintln(w, "          (F flush, D dma, O overlap, C compute, . idle)")
	tb := stats.NewTable("phase", "time(us)", "% of total")
	b := r.Breakdown
	tb.Row("flush", float64(b.FlushOnly)/1e6, pctOf(b.FlushOnly, r.Runtime))
	tb.Row("dma", float64(b.DMAFlush)/1e6, pctOf(b.DMAFlush, r.Runtime))
	tb.Row("compute", float64(b.ComputeOnly+b.ComputeDMA)/1e6,
		pctOf(b.ComputeOnly+b.ComputeDMA, r.Runtime))
	tb.Row("other", float64(b.Idle)/1e6, pctOf(b.Idle, r.Runtime))
	tb.Row("total", r.Seconds()*1e6, 100.0)
	tb.Render(w)
	return nil
}

// Fig2b regenerates the MachSuite-wide movement breakdown at 16-way
// parallelism under the baseline DMA flow.
func Fig2b(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2b: flush/DMA/compute breakdown, baseline DMA, 16-way designs")
	tb := stats.NewTable("benchmark", "flush%", "dma%", "compute%", "total(us)")
	for _, name := range machsuite.Names() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		cfg := soc.DefaultConfig()
		cfg.Lanes, cfg.Partitions = 16, 16
		cfg.PipelinedDMA, cfg.DMATriggered = false, false
		r, err := soc.Run(k, cfg)
		if err != nil {
			return err
		}
		b := r.Breakdown
		tb.Row(name, pctOf(b.FlushOnly, r.Runtime),
			pctOf(b.DMAFlush+b.Idle, r.Runtime),
			pctOf(b.ComputeOnly+b.ComputeDMA, r.Runtime),
			r.Seconds()*1e6)
	}
	tb.Render(w)
	return nil
}

// Fig3 prints the design-parameter table.
func Fig3(w io.Writer) error {
	fmt.Fprintln(w, "Figure 3 (table): design parameters")
	tb := stats.NewTable("parameter", "values")
	tb.Row("datapath lanes", "1, 2, 4, 8, 16")
	tb.Row("scratchpad partitioning", "1, 2, 4, 8, 16")
	tb.Row("data transfer mechanism", "DMA / cache")
	tb.Row("pipelined DMA", "enable/disable")
	tb.Row("DMA-triggered compute", "enable/disable")
	tb.Row("cache size", "2, 4, 8, 16, 32, 64 KB")
	tb.Row("cache line size", "16, 32, 64 B")
	tb.Row("cache ports", "1, 2, 4, 8")
	tb.Row("cache associativity", "4, 8")
	tb.Row("cache line flush", "84 ns/line")
	tb.Row("cache line invalidate", "71 ns/line")
	tb.Row("hardware prefetchers", "strided")
	tb.Row("MSHRs", "16")
	tb.Row("accelerator TLB size", "8")
	tb.Row("TLB miss latency", "200 ns")
	tb.Row("system bus width", "32, 64 b")
	tb.Render(w)
	return nil
}

// Fig4 regenerates the validation table: simulator vs the analytic golden
// model (the hardware stand-in; see internal/golden).
func Fig4(w io.Writer) error {
	fmt.Fprintln(w, "Figure 4: validation error, simulator vs analytic golden model")
	tb := stats.NewTable("benchmark", "flush err%", "dma err%", "compute err%", "total err%")
	var totals []float64
	for _, name := range golden.ValidationSuite() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		cfg := soc.DefaultConfig()
		cfg.PipelinedDMA, cfg.DMATriggered = false, false
		r, err := soc.Run(k, cfg)
		if err != nil {
			return err
		}
		e := golden.Compare(r, golden.Predict(k.Graph(), cfg))
		tb.Row(name, e.FlushPct, e.DMAPct, e.ComputePct, e.TotalPct)
		totals = append(totals, e.TotalPct)
	}
	tb.Row("average", "", "", "", stats.Mean(totals))
	tb.Render(w)
	return nil
}

// Fig5 renders the paper's DMA latency-reduction illustration as measured
// timelines: a synthetic streaming kernel over a 16 KB array under the
// baseline flow, pipelined DMA, and DMA-triggered computation.
func Fig5(w io.Writer) error {
	// One pass over 2048 doubles: out[i] = 2*in[i].
	b := traceBuilderForFig5()
	k := soc.Compile(ddg.Build(b))
	fmt.Fprintln(w, "Figure 5: DMA latency reduction techniques (synthetic 16 KB stream)")
	fmt.Fprintln(w, "(F flush-only, D dma-without-compute, O compute/dma overlap, C compute-only)")
	type variant struct {
		name       string
		pipe, trig bool
	}
	for _, v := range []variant{
		{"baseline", false, false},
		{"+pipelined dma", true, false},
		{"+dma-triggered", true, true},
	} {
		cfg := soc.DefaultConfig()
		cfg.PipelinedDMA, cfg.DMATriggered = v.pipe, v.trig
		r, err := soc.Run(k, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s %s  %6.1f us\n", v.name,
			report.TimelineASCII(r, 64), r.Seconds()*1e6)
	}
	return nil
}

// traceBuilderForFig5 builds the synthetic single-array stream of Fig 5.
func traceBuilderForFig5() *trace.Trace {
	b := trace.NewBuilder("fig5-stream")
	in := b.Alloc("A", trace.F64, 2048, trace.In)
	out := b.Alloc("out", trace.F64, 2048, trace.Out)
	for i := 0; i < 2048; i++ {
		b.SetF64(in, i, float64(i))
	}
	two := b.ConstF(2)
	for i := 0; i < 2048; i++ {
		b.BeginIter()
		b.Store(out, i, b.FMul(two, b.Load(in, i)))
	}
	return b.Finish()
}

// Fig6a regenerates the cumulative DMA-optimization study at 4 lanes:
// baseline, +pipelined DMA, +DMA-triggered compute.
func Fig6a(w io.Writer) error {
	fmt.Fprintln(w, "Figure 6a: cumulative DMA optimizations, 4-lane designs")
	tb := stats.NewTable("benchmark", "config", "flush-only(us)", "dma/flush(us)",
		"compute/dma(us)", "compute-only(us)", "total(us)")
	type variant struct {
		name       string
		pipe, trig bool
	}
	variants := []variant{
		{"baseline", false, false},
		{"+pipelined", true, false},
		{"+triggered", true, true},
	}
	for _, name := range Fig6Benchmarks() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		for _, v := range variants {
			cfg := soc.DefaultConfig()
			cfg.Lanes, cfg.Partitions = 4, 4
			cfg.PipelinedDMA, cfg.DMATriggered = v.pipe, v.trig
			r, err := soc.Run(k, cfg)
			if err != nil {
				return err
			}
			b := r.Breakdown
			tb.Row(name, v.name, float64(b.FlushOnly)/1e6,
				float64(b.DMAFlush+b.Idle)/1e6, float64(b.ComputeDMA)/1e6,
				float64(b.ComputeOnly)/1e6, r.Seconds()*1e6)
		}
	}
	tb.Render(w)
	return nil
}

// Fig6b regenerates the parallelism sweep with all DMA optimizations on.
func Fig6b(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 6b: parallelism sweep with all DMA optimizations")
	lanes := dse.DefaultLanes()
	if quick {
		lanes = []int{1, 4, 16}
	}
	tb := stats.NewTable("benchmark", "lanes", "movement-only(us)", "compute/dma(us)",
		"compute-only(us)", "total(us)", "speedup")
	for _, name := range Fig6Benchmarks() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		var base float64
		for _, l := range lanes {
			cfg := soc.DefaultConfig()
			cfg.Lanes, cfg.Partitions = l, l
			r, err := soc.Run(k, cfg)
			if err != nil {
				return err
			}
			if base == 0 {
				base = r.Seconds()
			}
			b := r.Breakdown
			tb.Row(name, l, float64(b.FlushOnly+b.DMAFlush+b.Idle)/1e6,
				float64(b.ComputeDMA)/1e6, float64(b.ComputeOnly)/1e6,
				r.Seconds()*1e6, base/r.Seconds())
		}
	}
	tb.Render(w)
	return nil
}

// fig7CacheSize finds the smallest cache size at which performance
// saturates for the benchmark (within 2% of the largest size), per the
// Fig 7 protocol.
func fig7CacheSize(k *soc.Compiled, lanes int) (int, error) {
	sizes := dse.DefaultCacheKB()
	var runtimes []sim.Tick
	for _, kb := range sizes {
		cfg := soc.DefaultConfig()
		cfg.Mem = soc.Cache
		cfg.Lanes = lanes
		cfg.CacheKB = kb
		r, err := soc.Run(k, cfg)
		if err != nil {
			return 0, err
		}
		runtimes = append(runtimes, r.Runtime)
	}
	limit := runtimes[len(runtimes)-1]
	for i, kb := range sizes {
		if float64(runtimes[i]) <= 1.02*float64(limit) {
			return kb, nil
		}
	}
	return sizes[len(sizes)-1], nil
}

// Fig7 regenerates the cache-based decomposition: processing, latency,
// and bandwidth time versus datapath parallelism (Burger-style: ideal
// memory; unconstrained-bandwidth cache; fully constrained cache).
func Fig7(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 7: cache-based accelerators: processing/latency/bandwidth time")
	lanes := dse.DefaultLanes()
	benches := Fig8Benchmarks()
	if quick {
		lanes = []int{1, 4, 16}
		benches = []string{"gemm-ncubed", "md-knn", "spmv-crs"}
	}
	tb := stats.NewTable("benchmark", "cacheKB", "lanes", "processing(us)",
		"latency(us)", "bandwidth(us)", "total(us)")
	for _, name := range benches {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		kb, err := fig7CacheSize(k, 4)
		if err != nil {
			return err
		}
		for _, l := range lanes {
			mk := func() soc.Config {
				cfg := soc.DefaultConfig()
				cfg.Mem = soc.Cache
				cfg.Lanes = l
				cfg.CacheKB = kb
				// Local memory bandwidth scales with the datapath so the
				// decomposition isolates system-side latency/bandwidth
				// (ports are a separate Fig 8 axis).
				cfg.CachePorts = l
				if cfg.CachePorts > 8 {
					cfg.CachePorts = 8
				}
				return cfg
			}
			// Processing: ideal single-cycle memory.
			ideal := mk()
			ideal.Mem = soc.Ideal
			r1, err := soc.Run(k, ideal)
			if err != nil {
				return err
			}
			// Latency: cache with effectively unlimited bus/DRAM bandwidth.
			unbw := mk()
			unbw.BusWidthBits = 4096
			unbw.DRAM.BytesPerNs = 1e6
			r2, err := soc.Run(k, unbw)
			if err != nil {
				return err
			}
			// Bandwidth: the fully constrained system.
			r3, err := soc.Run(k, mk())
			if err != nil {
				return err
			}
			proc := r1.Seconds() * 1e6
			lat := r2.Seconds()*1e6 - proc
			bwT := r3.Seconds()*1e6 - r2.Seconds()*1e6
			if lat < 0 {
				lat = 0
			}
			if bwT < 0 {
				bwT = 0
			}
			tb.Row(name, kb, l, proc, lat, bwT, r3.Seconds()*1e6)
		}
	}
	tb.Render(w)
	return nil
}

// Fig8 regenerates the power-performance Pareto frontiers for DMA- and
// cache-based designs with EDP optima marked.
func Fig8(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 8: power-performance Pareto curves, DMA vs cache")
	opt := axes(quick)
	tb := stats.NewTable("benchmark", "memsys", "lanes", "local", "time(us)",
		"power(mW)", "EDP(nJ*s)", "")
	for _, name := range Fig8Benchmarks() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		for _, mem := range []soc.MemKind{soc.DMA, soc.Cache} {
			var cfgs []soc.Config
			if mem == soc.DMA {
				cfgs = dse.SpadConfigs(soc.DefaultConfig(), soc.DMA, opt.Lanes, opt.Partitions)
			} else {
				cfgs = dse.CacheConfigs(soc.DefaultConfig(), opt.Lanes, opt.CacheKB,
					opt.CacheLines, opt.CachePorts, opt.CacheAssoc)
			}
			space, err := dse.Sweep(context.Background(), k, cfgs, dse.SweepOptions{})
			if err != nil {
				return err
			}
			best, ok := space.EDPOptimal()
			if !ok {
				return fmt.Errorf("figures: fig 8 %s/%s sweep: %w", name, mem, dse.ErrEmptySpace)
			}
			for _, p := range space.ParetoFront() {
				local := fmt.Sprintf("%db", p.Cfg.Partitions)
				if mem == soc.Cache {
					local = fmt.Sprintf("%dKB/%dp", p.Cfg.CacheKB, p.Cfg.CachePorts)
				}
				mark := ""
				if p.Cfg == best.Cfg {
					mark = "* EDP optimal"
				}
				tb.Row(name, mem.String(), p.Cfg.Lanes, local,
					p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3, p.Res.EDPJs*1e9, mark)
			}
		}
	}
	tb.Render(w)
	return nil
}

type scenarioResult struct {
	optima map[string]dse.Point
	imps   map[string]dse.Improvement
}

var (
	scenarioMu    sync.Mutex
	scenarioCache = map[string]scenarioResult{}
)

// scenarioOptima computes, per benchmark, the EDP-optimal point of each
// design scenario (shared by Figs 9 and 10; memoized per benchmark+sweep
// granularity since the sweeps are the expensive part).
func scenarioOptima(name string, opt dse.SweepAxes) (map[string]dse.Point, map[string]dse.Improvement, error) {
	key := fmt.Sprintf("%s/%d-%d-%d", name, len(opt.Lanes), len(opt.CacheKB), len(opt.CachePorts))
	scenarioMu.Lock()
	if c, ok := scenarioCache[key]; ok {
		scenarioMu.Unlock()
		return c.optima, c.imps, nil
	}
	scenarioMu.Unlock()
	k, err := Kernel(name)
	if err != nil {
		return nil, nil, err
	}
	scs := dse.Scenarios()
	isoSpace, err := dse.Sweep(context.Background(), k, dse.ScenarioConfigs(scs[0], opt), dse.SweepOptions{})
	if err != nil {
		return nil, nil, err
	}
	isoBest, ok := isoSpace.EDPOptimal()
	if !ok {
		return nil, nil, fmt.Errorf("figures: %s isolated sweep: %w", name, dse.ErrEmptySpace)
	}
	optima := map[string]dse.Point{scs[0].Name: isoBest}
	imps := map[string]dse.Improvement{}
	for _, sc := range scs[1:] {
		imp, err := dse.EDPImprovement(k, isoBest, sc, opt)
		if err != nil {
			return nil, nil, err
		}
		optima[sc.Name] = imp.CoBest
		imps[sc.Name] = imp
	}
	scenarioMu.Lock()
	scenarioCache[key] = scenarioResult{optima: optima, imps: imps}
	scenarioMu.Unlock()
	return optima, imps, nil
}

// Fig9 regenerates the Kiviat comparison: lanes / SRAM / local bandwidth
// of each scenario's EDP optimum, normalized to the isolated design.
func Fig9(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 9: EDP-optimal microarchitecture parameters by scenario")
	fmt.Fprintln(w, "(normalized to the isolated design)")
	opt := axes(quick)
	tb := stats.NewTable("benchmark", "scenario", "lanes", "sramKB", "localBW(B/cyc)",
		"lanes/iso", "sram/iso", "bw/iso")
	for _, name := range Fig8Benchmarks() {
		optima, _, err := scenarioOptima(name, opt)
		if err != nil {
			return err
		}
		g, _ := Graph(name)
		iso := dse.PointMetrics(optima["isolated"], g)
		for _, sc := range dse.Scenarios() {
			p := optima[sc.Name]
			m := dse.PointMetrics(p, g)
			tb.Row(name, sc.Name, m.Lanes, m.SRAMKB, m.LocalBW,
				float64(m.Lanes)/float64(iso.Lanes), m.SRAMKB/iso.SRAMKB,
				m.LocalBW/iso.LocalBW)
		}
	}
	tb.Render(w)
	return nil
}

// Summary prints the paper's headline numbers as this reproduction
// measures them: the validation error (Fig 4) and the geomean/max EDP
// improvements of co-design (Fig 10).
func Summary(w io.Writer, quick bool) error {
	// Validation average.
	var errs []float64
	for _, name := range golden.ValidationSuite() {
		k, err := Kernel(name)
		if err != nil {
			return err
		}
		cfg := soc.DefaultConfig()
		cfg.PipelinedDMA, cfg.DMATriggered = false, false
		r, err := soc.Run(k, cfg)
		if err != nil {
			return err
		}
		errs = append(errs, golden.Compare(r, golden.Predict(k.Graph(), cfg)).TotalPct)
	}

	opt := axes(quick)
	ratios := map[string][]float64{}
	var maxRatio float64
	var maxAt string
	for _, name := range Fig8Benchmarks() {
		_, imps, err := scenarioOptima(name, opt)
		if err != nil {
			return err
		}
		for sc, imp := range imps {
			ratios[sc] = append(ratios[sc], imp.EDPRatio)
			if imp.EDPRatio > maxRatio {
				maxRatio = imp.EDPRatio
				maxAt = name + "/" + sc
			}
		}
	}

	fmt.Fprintln(w, "Headline results (paper -> measured):")
	tb := stats.NewTable("claim", "paper", "measured")
	tb.Row("validation error vs hardware stand-in", "< 6% avg", fmt.Sprintf("%.1f%% avg", stats.Mean(errs)))
	tb.Row("EDP improvement, DMA/32b", "1.2x avg", fmt.Sprintf("%.2fx geomean", stats.Geomean(ratios["dma-32b"])))
	tb.Row("EDP improvement, cache/32b", "2.2x avg", fmt.Sprintf("%.2fx geomean", stats.Geomean(ratios["cache-32b"])))
	tb.Row("EDP improvement, cache/64b", "2.0x avg", fmt.Sprintf("%.2fx geomean", stats.Geomean(ratios["cache-64b"])))
	tb.Row("max EDP improvement", "7.4x", fmt.Sprintf("%.1fx (%s)", maxRatio, maxAt))
	tb.Render(w)
	return nil
}

// Fig10 regenerates the EDP-improvement study: isolated-optimal designs
// deployed naively in each system scenario vs co-designed optima.
func Fig10(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 10: EDP improvement of co-designed over isolated designs")
	opt := axes(quick)
	scs := dse.Scenarios()[1:]
	tb := stats.NewTable("benchmark", scs[0].Name, scs[1].Name, scs[2].Name)
	ratios := map[string][]float64{}
	for _, name := range Fig8Benchmarks() {
		_, imps, err := scenarioOptima(name, opt)
		if err != nil {
			return err
		}
		row := []any{name}
		for _, sc := range scs {
			r := imps[sc.Name].EDPRatio
			ratios[sc.Name] = append(ratios[sc.Name], r)
			row = append(row, r)
		}
		tb.Row(row...)
	}
	avg := []any{"average"}
	for _, sc := range scs {
		avg = append(avg, stats.Geomean(ratios[sc.Name]))
	}
	tb.Row(avg...)
	tb.Render(w)
	return nil
}
