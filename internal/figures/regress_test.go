package figures

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestRegeneratedFiguresMatchCommittedOutput regenerates every figure in
// quick mode and compares against the committed figures_output.txt, with
// the wall-clock "[figure N regenerated in ...]" lines (and their trailing
// blanks) stripped. Any numeric drift in a figure is a regression — the
// committed file is the reproduction's reference point.
func TestRegeneratedFiguresMatchCommittedOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration in short mode")
	}
	raw, err := os.ReadFile("../../figures_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	skipBlank := false
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		if strings.HasPrefix(line, "[figure ") {
			skipBlank = true
			continue
		}
		if skipBlank && strings.TrimSpace(line) == "" {
			skipBlank = false
			continue
		}
		skipBlank = false
		want.WriteString(line)
	}

	gens := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"1", func(w io.Writer) error { return Fig1(w, true) }},
		{"2a", Fig2a},
		{"2b", Fig2b},
		{"3", Fig3},
		{"4", Fig4},
		{"5", Fig5},
		{"6a", Fig6a},
		{"6b", func(w io.Writer) error { return Fig6b(w, true) }},
		{"7", func(w io.Writer) error { return Fig7(w, true) }},
		{"8", func(w io.Writer) error { return Fig8(w, true) }},
		{"9", func(w io.Writer) error { return Fig9(w, true) }},
		{"10", func(w io.Writer) error { return Fig10(w, true) }},
		{"summary", func(w io.Writer) error { return Summary(w, true) }},
	}
	var got strings.Builder
	for _, g := range gens {
		if err := g.fn(&got); err != nil {
			t.Fatalf("figure %s: %v", g.name, err)
		}
	}

	if got.String() != want.String() {
		gl := strings.Split(got.String(), "\n")
		wl := strings.Split(want.String(), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("figure output diverges from figures_output.txt at line %d:\n got: %q\nwant: %q\n(regenerate with: go run ./cmd/figures > figures_output.txt)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("figure output length differs: got %d lines, want %d (regenerate with: go run ./cmd/figures > figures_output.txt)",
			len(gl), len(wl))
	}
}
