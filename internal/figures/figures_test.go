package figures

import (
	"strings"
	"testing"
)

// run invokes a figure generator in quick mode and returns its output.
func run(t *testing.T, fn func(*strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := fn(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if len(out) == 0 {
		t.Fatal("no output")
	}
	return out
}

func TestFig1(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig1(b, true) })
	if !strings.Contains(out, "EDP optimal") {
		t.Fatal("no EDP optimum marked")
	}
	if !strings.Contains(out, "isolated") || !strings.Contains(out, "dma") {
		t.Fatal("missing design spaces")
	}
}

func TestFig2a(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig2a(b) })
	for _, want := range []string{"flush", "dma", "compute", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig2b(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig2b(b) })
	if strings.Count(out, "\n") < 13 {
		t.Fatalf("expected one row per benchmark:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig3(b) })
	for _, want := range []string{"84 ns/line", "71 ns/line", "MSHRs", "32, 64 b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig4(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig4(b) })
	if !strings.Contains(out, "average") {
		t.Fatal("no average row")
	}
}

func TestFig6a(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig6a(b) })
	for _, want := range []string{"baseline", "+pipelined", "+triggered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig6b(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig6b(b, true) })
	if !strings.Contains(out, "speedup") {
		t.Fatal("missing speedup column")
	}
}

func TestFig7(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig7(b, true) })
	for _, want := range []string{"processing", "latency", "bandwidth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	out := run(t, func(b *strings.Builder) error { return Fig8(b, true) })
	if strings.Count(out, "* EDP optimal") < 8 {
		t.Fatalf("expected an EDP star per benchmark and memsys:\n%s", out)
	}
}

func TestFig9And10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	out9 := run(t, func(b *strings.Builder) error { return Fig9(b, true) })
	if !strings.Contains(out9, "cache-64b") {
		t.Fatal("missing 64-bit scenario")
	}
	out10 := run(t, func(b *strings.Builder) error { return Fig10(b, true) })
	if !strings.Contains(out10, "average") {
		t.Fatal("missing average row")
	}
}

func TestGraphUnknown(t *testing.T) {
	if _, err := Graph("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGraphMemoized(t *testing.T) {
	a, err := Graph("kmp-kmp")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Graph("kmp-kmp")
	if a != b {
		t.Fatal("graph not memoized")
	}
}

func TestSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	out := run(t, func(b *strings.Builder) error { return Summary(b, true) })
	for _, want := range []string{"validation error", "EDP improvement", "geomean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFig5(t *testing.T) {
	out := run(t, func(b *strings.Builder) error { return Fig5(b) })
	for _, want := range []string{"baseline", "+pipelined dma", "+dma-triggered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Each variant's bar is present and the triggered bar shows overlap.
	if !strings.Contains(out, "O") {
		t.Fatalf("no overlap segment in:\n%s", out)
	}
}
