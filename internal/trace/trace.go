// Package trace is the gem5-Aladdin front-end: it captures the dynamic
// execution of an accelerated kernel as a trace of primitive operations.
//
// In the original system, Aladdin instruments an LLVM build of the kernel and
// records the dynamic LLVM IR instruction stream. Here, kernels are ordinary
// Go functions written against a Builder. Every arithmetic helper both
// computes the concrete result (so kernels are functionally testable against
// pure-Go references) and appends a trace node carrying its true register
// dependences via SSA-style Value handles. Loads and stores record concrete
// byte addresses, exactly the artifact Aladdin's profiler produces.
//
// Iteration labels (Builder.BeginIter) mark the boundaries of the loop body
// that the accelerator unrolls across datapath lanes; the scheduler maps
// iteration i to lane i mod L, mirroring how Aladdin realizes loop unrolling.
package trace

import (
	"fmt"
	"math"
)

// OpKind identifies a primitive operation in the dynamic trace. The set
// mirrors the LLVM IR subset Aladdin schedules: integer and floating-point
// arithmetic, bitwise logic, comparisons, selects, and memory accesses.
type OpKind uint8

// Operation kinds.
const (
	OpNop OpKind = iota
	OpLoad
	OpStore
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIAnd
	OpIOr
	OpIXor
	OpIShl
	OpIShr
	OpICmp
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt
	OpFExp
	OpFCmp
	OpSelect
	opKindCount
)

var opNames = [...]string{
	OpNop: "nop", OpLoad: "load", OpStore: "store",
	OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIDiv: "idiv",
	OpIAnd: "iand", OpIOr: "ior", OpIXor: "ixor", OpIShl: "ishl", OpIShr: "ishr",
	OpICmp: "icmp", OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul",
	OpFDiv: "fdiv", OpFSqrt: "fsqrt", OpFExp: "fexp", OpFCmp: "fcmp",
	OpSelect: "select",
}

// String returns the mnemonic for k.
func (k OpKind) String() string {
	if int(k) < len(opNames) && opNames[k] != "" {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsMem reports whether k is a memory access.
func (k OpKind) IsMem() bool { return k == OpLoad || k == OpStore }

// NumKinds is the number of distinct operation kinds, for table sizing.
const NumKinds = int(opKindCount)

// ElemKind is the element type of a traced array.
type ElemKind uint8

// Array element types.
const (
	U8 ElemKind = iota
	I32
	F64
)

// Size returns the element size in bytes.
func (e ElemKind) Size() uint32 {
	switch e {
	case U8:
		return 1
	case I32:
		return 4
	default:
		return 8
	}
}

// Direction describes how an array moves between host memory and the
// accelerator, i.e. whether the kernel contains dmaLoad/dmaStore calls for
// it in the paper's programming model.
type Direction uint8

// Array transfer directions.
const (
	// Local arrays are private intermediates: never transferred, always
	// held in scratchpads even for cache-based designs (Sec IV-D).
	Local Direction = iota
	// In arrays are dmaLoad-ed before compute (or demand-fetched through
	// the accelerator cache).
	In
	// Out arrays are dmaStore-d after compute (or written back through
	// the cache).
	Out
	// InOut arrays are both read and written by the accelerator.
	InOut
)

// IsIn reports whether the array carries input data into the accelerator.
func (d Direction) IsIn() bool { return d == In || d == InOut }

// IsOut reports whether the array carries results out of the accelerator.
func (d Direction) IsOut() bool { return d == Out || d == InOut }

// Array is a kernel-visible memory region. Data lives in a raw bit store so
// all element kinds share one representation.
type Array struct {
	ID   int16
	Name string
	Elem ElemKind
	Len  int // element count
	Dir  Direction

	bits []uint64
}

// Bytes returns the array footprint in bytes.
func (a *Array) Bytes() uint32 { return uint32(a.Len) * a.Elem.Size() }

// Value is an SSA-style handle to the result of a trace node. It carries the
// producing node index (or -1 for constants and host-initialized data) plus
// the concrete bits so kernels compute real results while being traced.
type Value struct {
	node int32
	bits uint64
}

// Node reports the producing trace node, or -1 if the value is constant.
func (v Value) Node() int32 { return v.node }

// Uint returns the value interpreted as an unsigned integer.
func (v Value) Uint() uint64 { return v.bits }

// Int returns the value interpreted as a signed integer.
func (v Value) Int() int64 { return int64(v.bits) }

// Float returns the value interpreted as a float64.
func (v Value) Float() float64 { return math.Float64frombits(v.bits) }

// Bool reports whether the value is nonzero (comparison results).
func (v Value) Bool() bool { return v.bits != 0 }

// NoDep marks an absent dependence slot in a Node.
const NoDep int32 = -1

// Node is one dynamic operation in the trace.
type Node struct {
	Kind OpKind
	Iter int32    // iteration label for lane mapping; -1 before the first BeginIter
	Deps [3]int32 // producing nodes; NoDep for unused slots
	Arr  int16    // array index for memory ops; -1 otherwise
	Addr uint32   // byte offset within the array, for memory ops
	Size uint8    // access size in bytes, for memory ops
}

// Trace is the dynamic profile of one kernel invocation.
type Trace struct {
	Name   string
	Nodes  []Node
	Arrays []*Array
	Iters  int // number of BeginIter calls (0 means a single implicit iteration)
}

// NumNodes returns the dynamic operation count.
func (t *Trace) NumNodes() int { return len(t.Nodes) }

// OpCounts tallies nodes per operation kind.
func (t *Trace) OpCounts() [NumKinds]int {
	var c [NumKinds]int
	for i := range t.Nodes {
		c[t.Nodes[i].Kind]++
	}
	return c
}

// FootprintBytes sums the sizes of arrays moved in or out of the accelerator.
func (t *Trace) FootprintBytes() (in, out uint64) {
	for _, a := range t.Arrays {
		if a.Dir.IsIn() {
			in += uint64(a.Bytes())
		}
		if a.Dir.IsOut() {
			out += uint64(a.Bytes())
		}
	}
	return in, out
}

// Builder records a kernel's dynamic trace while executing it functionally.
type Builder struct {
	name   string
	nodes  []Node
	arrays []*Array
	iter   int32
	iters  int
}

// NewBuilder returns an empty trace builder for the named kernel.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, iter: -1}
}

// Finish seals the builder and returns the trace.
func (b *Builder) Finish() *Trace {
	return &Trace{Name: b.name, Nodes: b.nodes, Arrays: b.arrays, Iters: b.iters}
}

// Alloc declares an array visible to the accelerator.
func (b *Builder) Alloc(name string, elem ElemKind, n int, dir Direction) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("trace: array %q has non-positive length %d", name, n))
	}
	a := &Array{ID: int16(len(b.arrays)), Name: name, Elem: elem, Len: n, Dir: dir,
		bits: make([]uint64, n)}
	b.arrays = append(b.arrays, a)
	return a
}

// BeginIter marks the start of the next unrollable loop iteration. Nodes
// emitted afterwards belong to this iteration for lane assignment.
func (b *Builder) BeginIter() {
	b.iter++
	b.iters++
}

// Iter returns the current iteration label.
func (b *Builder) Iter() int32 { return b.iter }

func (b *Builder) emit(n Node) int32 {
	id := int32(len(b.nodes))
	n.Iter = b.iter
	b.nodes = append(b.nodes, n)
	return id
}

func deps3(a, bb, c int32) [3]int32 { return [3]int32{a, bb, c} }

// --- Host-side (untraced) data initialization and readback ---

// SetF64 initializes element i without emitting a trace node (host writes).
func (b *Builder) SetF64(a *Array, i int, v float64) { a.bits[i] = math.Float64bits(v) }

// SetInt initializes element i without emitting a trace node (host writes).
func (b *Builder) SetInt(a *Array, i int, v int64) { a.bits[i] = uint64(v) }

// GetF64 reads element i without emitting a trace node (host reads).
func (b *Builder) GetF64(a *Array, i int) float64 { return math.Float64frombits(a.bits[i]) }

// GetInt reads element i without emitting a trace node (host reads).
func (b *Builder) GetInt(a *Array, i int) int64 { return int64(a.bits[i]) }

// --- Constants ---

// ConstF materializes a floating-point constant (no trace node: constants
// are baked into the datapath).
func (b *Builder) ConstF(v float64) Value {
	return Value{node: NoDep, bits: math.Float64bits(v)}
}

// ConstI materializes an integer constant.
func (b *Builder) ConstI(v int64) Value { return Value{node: NoDep, bits: uint64(v)} }

// --- Memory operations ---

func (b *Builder) checkIdx(a *Array, i int) {
	if i < 0 || i >= a.Len {
		panic(fmt.Sprintf("trace: %s[%d] out of range (len %d)", a.Name, i, a.Len))
	}
}

// Load reads element i of a, emitting a load node. dep, when non-zero-value,
// is the value that produced the index (indirect accesses such as vec[col[j]]
// must pass the loaded index so the DDDG carries the true dependence).
func (b *Builder) Load(a *Array, i int, dep ...Value) Value {
	b.checkIdx(a, i)
	d := NoDep
	if len(dep) > 0 {
		d = dep[0].node
	}
	id := b.emit(Node{Kind: OpLoad, Deps: deps3(d, NoDep, NoDep), Arr: a.ID,
		Addr: uint32(i) * a.Elem.Size(), Size: uint8(a.Elem.Size())})
	return Value{node: id, bits: a.bits[i]}
}

// Store writes v to element i of a, emitting a store node. dep optionally
// carries the index-producing value for indirect stores.
func (b *Builder) Store(a *Array, i int, v Value, dep ...Value) {
	b.checkIdx(a, i)
	d := NoDep
	if len(dep) > 0 {
		d = dep[0].node
	}
	a.bits[i] = v.bits
	b.emit(Node{Kind: OpStore, Deps: deps3(v.node, d, NoDep), Arr: a.ID,
		Addr: uint32(i) * a.Elem.Size(), Size: uint8(a.Elem.Size())})
}

// --- Floating-point arithmetic ---

func (b *Builder) fbin(k OpKind, x, y Value, r float64) Value {
	id := b.emit(Node{Kind: k, Deps: deps3(x.node, y.node, NoDep), Arr: -1})
	return Value{node: id, bits: math.Float64bits(r)}
}

// FAdd emits x + y.
func (b *Builder) FAdd(x, y Value) Value { return b.fbin(OpFAdd, x, y, x.Float()+y.Float()) }

// FSub emits x - y.
func (b *Builder) FSub(x, y Value) Value { return b.fbin(OpFSub, x, y, x.Float()-y.Float()) }

// FMul emits x * y.
func (b *Builder) FMul(x, y Value) Value { return b.fbin(OpFMul, x, y, x.Float()*y.Float()) }

// FDiv emits x / y.
func (b *Builder) FDiv(x, y Value) Value { return b.fbin(OpFDiv, x, y, x.Float()/y.Float()) }

// FSqrt emits sqrt(x).
func (b *Builder) FSqrt(x Value) Value {
	id := b.emit(Node{Kind: OpFSqrt, Deps: deps3(x.node, NoDep, NoDep), Arr: -1})
	return Value{node: id, bits: math.Float64bits(math.Sqrt(x.Float()))}
}

// FExp emits e**x (a pipelined lookup-table/CORDIC-style unit in hardware;
// needed by the sigmoid activations of backprop-class kernels).
func (b *Builder) FExp(x Value) Value {
	id := b.emit(Node{Kind: OpFExp, Deps: deps3(x.node, NoDep, NoDep), Arr: -1})
	return Value{node: id, bits: math.Float64bits(math.Exp(x.Float()))}
}

// FLess emits the comparison x < y, producing 1 or 0.
func (b *Builder) FLess(x, y Value) Value {
	id := b.emit(Node{Kind: OpFCmp, Deps: deps3(x.node, y.node, NoDep), Arr: -1})
	var r uint64
	if x.Float() < y.Float() {
		r = 1
	}
	return Value{node: id, bits: r}
}

// --- Integer arithmetic ---

func (b *Builder) ibin(k OpKind, x, y Value, r uint64) Value {
	id := b.emit(Node{Kind: k, Deps: deps3(x.node, y.node, NoDep), Arr: -1})
	return Value{node: id, bits: r}
}

// IAdd emits x + y.
func (b *Builder) IAdd(x, y Value) Value { return b.ibin(OpIAdd, x, y, x.bits+y.bits) }

// ISub emits x - y.
func (b *Builder) ISub(x, y Value) Value { return b.ibin(OpISub, x, y, x.bits-y.bits) }

// IMul emits x * y.
func (b *Builder) IMul(x, y Value) Value { return b.ibin(OpIMul, x, y, x.bits*y.bits) }

// IDiv emits x / y (unsigned).
func (b *Builder) IDiv(x, y Value) Value { return b.ibin(OpIDiv, x, y, x.bits/y.bits) }

// And emits x & y.
func (b *Builder) And(x, y Value) Value { return b.ibin(OpIAnd, x, y, x.bits&y.bits) }

// Or emits x | y.
func (b *Builder) Or(x, y Value) Value { return b.ibin(OpIOr, x, y, x.bits|y.bits) }

// Xor emits x ^ y.
func (b *Builder) Xor(x, y Value) Value { return b.ibin(OpIXor, x, y, x.bits^y.bits) }

// Shl emits x << k for a constant shift amount.
func (b *Builder) Shl(x Value, k uint) Value {
	id := b.emit(Node{Kind: OpIShl, Deps: deps3(x.node, NoDep, NoDep), Arr: -1})
	return Value{node: id, bits: x.bits << k}
}

// Shr emits x >> k for a constant shift amount.
func (b *Builder) Shr(x Value, k uint) Value {
	id := b.emit(Node{Kind: OpIShr, Deps: deps3(x.node, NoDep, NoDep), Arr: -1})
	return Value{node: id, bits: x.bits >> k}
}

// ILess emits the signed comparison x < y, producing 1 or 0.
func (b *Builder) ILess(x, y Value) Value {
	id := b.emit(Node{Kind: OpICmp, Deps: deps3(x.node, y.node, NoDep), Arr: -1})
	var r uint64
	if x.Int() < y.Int() {
		r = 1
	}
	return Value{node: id, bits: r}
}

// IEq emits the comparison x == y, producing 1 or 0.
func (b *Builder) IEq(x, y Value) Value {
	id := b.emit(Node{Kind: OpICmp, Deps: deps3(x.node, y.node, NoDep), Arr: -1})
	var r uint64
	if x.bits == y.bits {
		r = 1
	}
	return Value{node: id, bits: r}
}

// Select emits cond ? x : y.
func (b *Builder) Select(cond, x, y Value) Value {
	id := b.emit(Node{Kind: OpSelect, Deps: deps3(cond.node, x.node, y.node), Arr: -1})
	r := y.bits
	if cond.Bool() {
		r = x.bits
	}
	return Value{node: id, bits: r}
}
