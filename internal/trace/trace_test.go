package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	if OpFMul.String() != "fmul" {
		t.Fatalf("OpFMul = %q", OpFMul)
	}
	if OpKind(200).String() != "op(200)" {
		t.Fatalf("unknown kind = %q", OpKind(200))
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpFAdd.IsMem() {
		t.Fatal("IsMem wrong")
	}
}

func TestElemKindSize(t *testing.T) {
	if U8.Size() != 1 || I32.Size() != 4 || F64.Size() != 8 {
		t.Fatal("element sizes wrong")
	}
}

func TestDirection(t *testing.T) {
	if Local.IsIn() || Local.IsOut() {
		t.Fatal("Local moves data")
	}
	if !In.IsIn() || In.IsOut() {
		t.Fatal("In direction wrong")
	}
	if Out.IsIn() || !Out.IsOut() {
		t.Fatal("Out direction wrong")
	}
	if !InOut.IsIn() || !InOut.IsOut() {
		t.Fatal("InOut direction wrong")
	}
}

func TestBuilderFunctionalArithmetic(t *testing.T) {
	b := NewBuilder("arith")
	x := b.ConstF(3.0)
	y := b.ConstF(4.0)
	hyp := b.FSqrt(b.FAdd(b.FMul(x, x), b.FMul(y, y)))
	if hyp.Float() != 5.0 {
		t.Fatalf("hypot = %v, want 5", hyp.Float())
	}
	tr := b.Finish()
	c := tr.OpCounts()
	if c[OpFMul] != 2 || c[OpFAdd] != 1 || c[OpFSqrt] != 1 {
		t.Fatalf("op counts = %v", c)
	}
}

func TestBuilderIntegerOps(t *testing.T) {
	b := NewBuilder("int")
	x := b.ConstI(12)
	y := b.ConstI(5)
	if got := b.IAdd(x, y).Int(); got != 17 {
		t.Fatalf("IAdd = %d", got)
	}
	if got := b.ISub(x, y).Int(); got != 7 {
		t.Fatalf("ISub = %d", got)
	}
	if got := b.IMul(x, y).Int(); got != 60 {
		t.Fatalf("IMul = %d", got)
	}
	if got := b.IDiv(x, y).Uint(); got != 2 {
		t.Fatalf("IDiv = %d", got)
	}
	if got := b.And(x, y).Uint(); got != 4 {
		t.Fatalf("And = %d", got)
	}
	if got := b.Or(x, y).Uint(); got != 13 {
		t.Fatalf("Or = %d", got)
	}
	if got := b.Xor(x, y).Uint(); got != 9 {
		t.Fatalf("Xor = %d", got)
	}
	if got := b.Shl(x, 2).Uint(); got != 48 {
		t.Fatalf("Shl = %d", got)
	}
	if got := b.Shr(x, 2).Uint(); got != 3 {
		t.Fatalf("Shr = %d", got)
	}
	if !b.ILess(y, x).Bool() || b.ILess(x, y).Bool() {
		t.Fatal("ILess wrong")
	}
	if !b.IEq(x, x).Bool() || b.IEq(x, y).Bool() {
		t.Fatal("IEq wrong")
	}
}

func TestSelect(t *testing.T) {
	b := NewBuilder("sel")
	cond := b.ILess(b.ConstI(1), b.ConstI(2))
	got := b.Select(cond, b.ConstF(7), b.ConstF(9))
	if got.Float() != 7 {
		t.Fatalf("Select true = %v", got.Float())
	}
	cond2 := b.ILess(b.ConstI(2), b.ConstI(1))
	got2 := b.Select(cond2, b.ConstF(7), b.ConstF(9))
	if got2.Float() != 9 {
		t.Fatalf("Select false = %v", got2.Float())
	}
}

func TestFLess(t *testing.T) {
	b := NewBuilder("fless")
	if !b.FLess(b.ConstF(1), b.ConstF(2)).Bool() {
		t.Fatal("1 < 2 should hold")
	}
	if b.FLess(b.ConstF(2), b.ConstF(1)).Bool() {
		t.Fatal("2 < 1 should not hold")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := NewBuilder("mem")
	a := b.Alloc("a", F64, 8, In)
	b.SetF64(a, 3, 2.5)
	v := b.Load(a, 3)
	if v.Float() != 2.5 {
		t.Fatalf("load = %v", v.Float())
	}
	b.Store(a, 4, b.FMul(v, b.ConstF(2)))
	if got := b.GetF64(a, 4); got != 5.0 {
		t.Fatalf("stored = %v", got)
	}
	tr := b.Finish()
	if tr.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", tr.NumNodes())
	}
	ld := tr.Nodes[0]
	if ld.Kind != OpLoad || ld.Arr != 0 || ld.Addr != 24 || ld.Size != 8 {
		t.Fatalf("load node = %+v", ld)
	}
	st := tr.Nodes[2]
	if st.Kind != OpStore || st.Addr != 32 {
		t.Fatalf("store node = %+v", st)
	}
	if st.Deps[0] != 1 {
		t.Fatalf("store dep = %d, want node 1 (the fmul)", st.Deps[0])
	}
}

func TestIndirectLoadDependence(t *testing.T) {
	b := NewBuilder("indirect")
	idx := b.Alloc("idx", I32, 4, In)
	val := b.Alloc("val", F64, 16, In)
	b.SetInt(idx, 0, 9)
	iv := b.Load(idx, 0)
	dv := b.Load(val, int(iv.Int()), iv)
	_ = dv
	tr := b.Finish()
	second := tr.Nodes[1]
	if second.Deps[0] != 0 {
		t.Fatalf("indirect load dep = %d, want 0", second.Deps[0])
	}
	if second.Addr != 72 {
		t.Fatalf("indirect addr = %d, want 72", second.Addr)
	}
}

func TestIterationLabels(t *testing.T) {
	b := NewBuilder("iters")
	a := b.Alloc("a", F64, 4, InOut)
	pre := b.ConstF(1)
	for i := 0; i < 4; i++ {
		b.BeginIter()
		v := b.Load(a, i)
		b.Store(a, i, b.FAdd(v, pre))
	}
	tr := b.Finish()
	if tr.Iters != 4 {
		t.Fatalf("iters = %d", tr.Iters)
	}
	for i, n := range tr.Nodes {
		want := int32(i / 3)
		if n.Iter != want {
			t.Fatalf("node %d iter = %d, want %d", i, n.Iter, want)
		}
	}
}

func TestPreIterNodesLabeledMinusOne(t *testing.T) {
	b := NewBuilder("pre")
	a := b.Alloc("a", F64, 2, In)
	b.SetF64(a, 0, 1)
	v := b.Load(a, 0)
	_ = v
	tr := b.Finish()
	if tr.Nodes[0].Iter != -1 {
		t.Fatalf("pre-iter label = %d, want -1", tr.Nodes[0].Iter)
	}
}

func TestFootprint(t *testing.T) {
	b := NewBuilder("fp")
	b.Alloc("in", F64, 100, In)      // 800 B in
	b.Alloc("io", I32, 10, InOut)    // 40 B both
	b.Alloc("out", U8, 64, Out)      // 64 B out
	b.Alloc("tmp", F64, 1000, Local) // neither
	tr := b.Finish()
	in, out := tr.FootprintBytes()
	if in != 840 || out != 104 {
		t.Fatalf("footprint = %d in, %d out", in, out)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := NewBuilder("oob")
	a := b.Alloc("a", F64, 4, In)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load did not panic")
		}
	}()
	b.Load(a, 4)
}

func TestAllocZeroPanics(t *testing.T) {
	b := NewBuilder("zero")
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length alloc did not panic")
		}
	}()
	b.Alloc("a", F64, 0, In)
}

func TestArrayIDsSequential(t *testing.T) {
	b := NewBuilder("ids")
	for i := 0; i < 5; i++ {
		a := b.Alloc("x", U8, 1, Local)
		if a.ID != int16(i) {
			t.Fatalf("array %d has ID %d", i, a.ID)
		}
	}
}

// Property: traced FP arithmetic matches Go arithmetic exactly.
func TestTracedArithmeticMatchesGo(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		b := NewBuilder("q")
		vx, vy := b.ConstF(x), b.ConstF(y)
		sum := b.FAdd(vx, vy).Float()
		dif := b.FSub(vx, vy).Float()
		prd := b.FMul(vx, vy).Float()
		return sum == x+y && dif == x-y && prd == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every node's register dependences point strictly backwards,
// i.e. the trace order is a valid topological order.
func TestDepsPointBackwards(t *testing.T) {
	b := NewBuilder("topo")
	a := b.Alloc("a", F64, 64, InOut)
	for i := 0; i < 64; i++ {
		b.SetF64(a, i, float64(i))
	}
	acc := b.ConstF(0)
	for i := 0; i < 64; i++ {
		b.BeginIter()
		acc = b.FAdd(acc, b.Load(a, i))
	}
	b.Store(a, 0, acc)
	tr := b.Finish()
	for i, n := range tr.Nodes {
		for _, d := range n.Deps {
			if d != NoDep && d >= int32(i) {
				t.Fatalf("node %d depends on %d (not strictly backwards)", i, d)
			}
		}
	}
	if acc.Float() != 64*63/2 {
		t.Fatalf("reduction = %v", acc.Float())
	}
}
