package trace

import (
	"bytes"
	"testing"
)

func roundTripTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("rt")
	a := b.Alloc("a", F64, 16, In)
	o := b.Alloc("o", I32, 4, Out)
	for i := 0; i < 16; i++ {
		b.SetF64(a, i, float64(i)*1.5)
	}
	acc := b.ConstF(0)
	for i := 0; i < 16; i++ {
		b.BeginIter()
		acc = b.FAdd(acc, b.Load(a, i))
	}
	b.Store(o, 0, b.ConstI(7))
	return b.Finish()
}

func TestSerializeRoundTrip(t *testing.T) {
	orig := roundTripTrace(t)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Iters != orig.Iters {
		t.Fatalf("metadata mismatch: %q/%d", got.Name, got.Iters)
	}
	if len(got.Nodes) != len(orig.Nodes) {
		t.Fatalf("nodes %d != %d", len(got.Nodes), len(orig.Nodes))
	}
	for i := range orig.Nodes {
		if got.Nodes[i] != orig.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, got.Nodes[i], orig.Nodes[i])
		}
	}
	if len(got.Arrays) != 2 {
		t.Fatalf("arrays = %d", len(got.Arrays))
	}
	for i := range orig.Arrays {
		oa, ga := orig.Arrays[i], got.Arrays[i]
		if ga.Name != oa.Name || ga.Elem != oa.Elem || ga.Len != oa.Len || ga.Dir != oa.Dir {
			t.Fatalf("array %d metadata differs", i)
		}
		for j := range oa.bits {
			if ga.bits[j] != oa.bits[j] {
				t.Fatalf("array %d element %d differs", i, j)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadTraceRejectsBadDeps(t *testing.T) {
	orig := roundTripTrace(t)
	orig.Nodes[0].Deps[0] = 5 // forward dependence
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("forward dependence accepted")
	}
}

func TestReadTraceRejectsOutOfRangeAccess(t *testing.T) {
	orig := roundTripTrace(t)
	for i := range orig.Nodes {
		if orig.Nodes[i].Kind == OpLoad {
			orig.Nodes[i].Addr = 1 << 20
			break
		}
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("out-of-range access accepted")
	}
}

func TestReadTraceRejectsBadIterLabels(t *testing.T) {
	orig := roundTripTrace(t)
	last := len(orig.Nodes) - 1
	orig.Nodes[last].Iter = 3
	orig.Nodes[last-1].Iter = 9 // decreasing afterwards
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("decreasing iteration labels accepted")
	}
}

func TestReadTraceRejectsBadArrayRef(t *testing.T) {
	orig := roundTripTrace(t)
	for i := range orig.Nodes {
		if orig.Nodes[i].Kind.IsMem() {
			orig.Nodes[i].Arr = 9
			break
		}
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("bad array reference accepted")
	}
}
