package trace

import (
	"math/rand"
	"testing"
)

// buildReduction constructs a serial sum of k loaded values.
func buildReduction(k int) (*Trace, *Builder) {
	b := NewBuilder("red")
	a := b.Alloc("a", F64, k, In)
	out := b.Alloc("out", F64, 1, Out)
	for i := 0; i < k; i++ {
		b.SetF64(a, i, float64(i))
	}
	b.BeginIter()
	acc := b.ConstF(0)
	for i := 0; i < k; i++ {
		acc = b.FAdd(acc, b.Load(a, i))
	}
	b.Store(out, 0, acc)
	return b.Finish(), b
}

// chainDepth computes the longest dependence chain restricted to nodes of
// the given kind.
func chainDepth(tr *Trace, kind OpKind) int {
	depth := make([]int, len(tr.Nodes))
	best := 0
	for i := range tr.Nodes {
		d := 0
		for _, p := range tr.Nodes[i].Deps {
			if p >= 0 && tr.Nodes[p].Kind == kind && depth[p] > d {
				d = depth[p]
			}
		}
		if tr.Nodes[i].Kind == kind {
			d++
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

func validateTrace(t *testing.T, tr *Trace) {
	t.Helper()
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReassociateReducesChainDepth(t *testing.T) {
	tr, _ := buildReduction(16)
	before := chainDepth(tr, OpFAdd)
	if before != 16 {
		t.Fatalf("serial chain depth = %d, want 16", before)
	}
	nodes := tr.NumNodes()
	if got := ReassociateReductions(tr); got != 1 {
		t.Fatalf("chains rewritten = %d", got)
	}
	validateTrace(t, tr)
	if tr.NumNodes() != nodes {
		t.Fatalf("node count changed: %d -> %d", nodes, tr.NumNodes())
	}
	after := chainDepth(tr, OpFAdd)
	// Balanced tree over 16 leaves: depth ~ ceil(log2(16)) + 1.
	if after > 6 {
		t.Fatalf("tree depth = %d, want ~log2(16)", after)
	}
}

func TestReassociateKeepsStoreConsumer(t *testing.T) {
	tr, _ := buildReduction(8)
	ReassociateReductions(tr)
	validateTrace(t, tr)
	// The store must still depend on the final add.
	last := tr.Nodes[len(tr.Nodes)-1]
	if last.Kind != OpStore {
		t.Fatalf("last node = %v", last.Kind)
	}
	dep := last.Deps[0]
	if dep < 0 || tr.Nodes[dep].Kind != OpFAdd {
		t.Fatalf("store depends on %v", tr.Nodes[dep].Kind)
	}
}

func TestReassociateShortChainsUntouched(t *testing.T) {
	tr, _ := buildReduction(2) // only 2 adds: below threshold
	nodes := append([]Node{}, tr.Nodes...)
	if got := ReassociateReductions(tr); got != 0 {
		t.Fatalf("rewrote %d chains in a 2-op reduction", got)
	}
	for i := range nodes {
		if nodes[i] != tr.Nodes[i] {
			t.Fatal("short chain was modified")
		}
	}
}

func TestReassociateMixedKindsSeparately(t *testing.T) {
	// sum of products: FMul chain feeding an FAdd chain — only the FAdd
	// chain forms (muls are independent, not a chain).
	b := NewBuilder("dot")
	x := b.Alloc("x", F64, 8, In)
	y := b.Alloc("y", F64, 8, In)
	o := b.Alloc("o", F64, 1, Out)
	for i := 0; i < 8; i++ {
		b.SetF64(x, i, 1)
		b.SetF64(y, i, 2)
	}
	b.BeginIter()
	acc := b.ConstF(0)
	for i := 0; i < 8; i++ {
		acc = b.FAdd(acc, b.FMul(b.Load(x, i), b.Load(y, i)))
	}
	b.Store(o, 0, acc)
	tr := b.Finish()
	if got := ReassociateReductions(tr); got != 1 {
		t.Fatalf("chains = %d, want 1 (the adds)", got)
	}
	validateTrace(t, tr)
	if d := chainDepth(tr, OpFAdd); d > 5 {
		t.Fatalf("add depth = %d", d)
	}
	// Loads/muls unchanged in count.
	c := tr.OpCounts()
	if c[OpFMul] != 8 || c[OpLoad] != 16 || c[OpFAdd] != 8 {
		t.Fatalf("op counts changed: %v", c)
	}
}

func TestReassociateMemoryOrderPreserved(t *testing.T) {
	// Loads and stores must keep their relative order even as adds move.
	b := NewBuilder("memorder")
	a := b.Alloc("a", F64, 8, InOut)
	for i := 0; i < 8; i++ {
		b.SetF64(a, i, float64(i))
	}
	b.BeginIter()
	acc := b.ConstF(0)
	for i := 0; i < 4; i++ {
		acc = b.FAdd(acc, b.Load(a, i))
	}
	b.Store(a, 0, acc) // read-after-write hazard with the loads above
	acc2 := b.Load(a, 0)
	b.Store(a, 1, acc2)
	tr := b.Finish()
	var beforeMem []Node
	for _, nd := range tr.Nodes {
		if nd.Kind.IsMem() {
			beforeMem = append(beforeMem, nd)
		}
	}
	ReassociateReductions(tr)
	validateTrace(t, tr)
	var afterMem []Node
	for _, nd := range tr.Nodes {
		if nd.Kind.IsMem() {
			afterMem = append(afterMem, nd)
		}
	}
	if len(beforeMem) != len(afterMem) {
		t.Fatal("memory op count changed")
	}
	for i := range beforeMem {
		if beforeMem[i].Kind != afterMem[i].Kind || beforeMem[i].Addr != afterMem[i].Addr {
			t.Fatalf("memory op %d reordered: %+v vs %+v", i, beforeMem[i], afterMem[i])
		}
	}
}

func TestReassociatePerIterationChains(t *testing.T) {
	// One reduction per iteration: each is its own chain.
	b := NewBuilder("multi")
	a := b.Alloc("a", F64, 64, In)
	o := b.Alloc("o", F64, 8, Out)
	for i := 0; i < 64; i++ {
		b.SetF64(a, i, 1)
	}
	for it := 0; it < 8; it++ {
		b.BeginIter()
		acc := b.ConstF(0)
		for i := 0; i < 8; i++ {
			acc = b.FAdd(acc, b.Load(a, it*8+i))
		}
		b.Store(o, it, acc)
	}
	tr := b.Finish()
	if got := ReassociateReductions(tr); got != 8 {
		t.Fatalf("chains = %d, want 8", got)
	}
	validateTrace(t, tr)
	// Iteration labels still nondecreasing with same counts per iteration.
	counts := map[int32]int{}
	for _, nd := range tr.Nodes {
		counts[nd.Iter]++
	}
	for it := int32(0); it < 8; it++ {
		if counts[it] != 17 { // 8 loads + 8 adds + 1 store
			t.Fatalf("iteration %d has %d nodes", it, counts[it])
		}
	}
}

func TestReassociateRandomTracesStayValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("rand")
		a := b.Alloc("a", F64, 32, InOut)
		for i := 0; i < 32; i++ {
			b.SetF64(a, i, rng.Float64())
		}
		for it := 0; it < 6; it++ {
			b.BeginIter()
			acc := b.ConstF(0)
			k := 1 + rng.Intn(10)
			for i := 0; i < k; i++ {
				acc = b.FAdd(acc, b.Load(a, rng.Intn(32)))
			}
			if rng.Intn(2) == 0 {
				b.Store(a, rng.Intn(32), acc)
			}
			if rng.Intn(3) == 0 {
				// An unrelated integer chain.
				iacc := b.ConstI(0)
				for i := 0; i < rng.Intn(6); i++ {
					iacc = b.IAdd(iacc, b.ConstI(int64(i)))
				}
				_ = iacc
			}
		}
		tr := b.Finish()
		ReassociateReductions(tr)
		if err := tr.validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
