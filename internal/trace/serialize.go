// Trace serialization: Aladdin's workflow profiles a program once and
// re-schedules the recorded trace across many design points, possibly on
// other machines. WriteTo/ReadTrace give the same capability here using
// encoding/gob, including the arrays' concrete contents so functional
// state survives the round trip.

package trace

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTrace is the exported-field image of a Trace for gob.
type wireTrace struct {
	Version int
	Name    string
	Nodes   []Node
	Iters   int
	Arrays  []wireArray
}

type wireArray struct {
	Name string
	Elem ElemKind
	Len  int
	Dir  Direction
	Bits []uint64
}

// serializationVersion guards against decoding traces from incompatible
// builds.
const serializationVersion = 1

// Encode serializes the trace.
func (t *Trace) Encode(w io.Writer) error {
	wt := wireTrace{
		Version: serializationVersion,
		Name:    t.Name,
		Nodes:   t.Nodes,
		Iters:   t.Iters,
	}
	for _, a := range t.Arrays {
		wt.Arrays = append(wt.Arrays, wireArray{
			Name: a.Name, Elem: a.Elem, Len: a.Len, Dir: a.Dir, Bits: a.bits,
		})
	}
	if err := gob.NewEncoder(w).Encode(wt); err != nil {
		return fmt.Errorf("trace: encode %q: %w", t.Name, err)
	}
	return nil
}

// ReadTrace deserializes a trace written by Encode and revalidates its
// structural invariants (dependences strictly backwards, addresses in
// range) so a corrupted or hand-edited file cannot crash the scheduler.
func ReadTrace(r io.Reader) (*Trace, error) {
	var wt wireTrace
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if wt.Version != serializationVersion {
		return nil, fmt.Errorf("trace: version %d, want %d", wt.Version, serializationVersion)
	}
	t := &Trace{Name: wt.Name, Nodes: wt.Nodes, Iters: wt.Iters}
	for i, wa := range wt.Arrays {
		if wa.Len <= 0 || len(wa.Bits) != wa.Len {
			return nil, fmt.Errorf("trace: array %d (%q) has inconsistent length", i, wa.Name)
		}
		t.Arrays = append(t.Arrays, &Array{
			ID: int16(i), Name: wa.Name, Elem: wa.Elem, Len: wa.Len,
			Dir: wa.Dir, bits: wa.Bits,
		})
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// validate re-checks the invariants the builder enforces at record time.
func (t *Trace) validate() error {
	lastIter := int32(-1)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Kind >= opKindCount {
			return fmt.Errorf("trace: node %d has unknown kind %d", i, n.Kind)
		}
		for _, d := range n.Deps {
			if d != NoDep && (d < 0 || d >= int32(i)) {
				return fmt.Errorf("trace: node %d dependence %d not strictly backwards", i, d)
			}
		}
		if n.Iter < lastIter {
			return fmt.Errorf("trace: node %d iteration label decreases", i)
		}
		lastIter = n.Iter
		if int(lastIter) >= t.Iters {
			return fmt.Errorf("trace: node %d iteration %d out of range (%d)", i, n.Iter, t.Iters)
		}
		if n.Kind.IsMem() {
			if int(n.Arr) < 0 || int(n.Arr) >= len(t.Arrays) {
				return fmt.Errorf("trace: node %d references array %d of %d", i, n.Arr, len(t.Arrays))
			}
			a := t.Arrays[n.Arr]
			if uint64(n.Addr)+uint64(n.Size) > uint64(a.Bytes()) {
				return fmt.Errorf("trace: node %d accesses [%d,%d) beyond array %q (%d bytes)",
					i, n.Addr, n.Addr+uint32(n.Size), a.Name, a.Bytes())
			}
		}
	}
	return nil
}
