package trace_test

import (
	"math/rand"
	"testing"

	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/trace"
)

// buildRandom drives the trace builder with a pseudo-random but in-contract
// op/dep sequence derived from the fuzz input: every index is reduced into
// its array's range, values are drawn from the live set, and loads, stores,
// float and integer ops are interleaved across iterations.
func buildRandom(data []byte) *trace.Trace {
	rng := rand.New(rand.NewSource(int64(len(data))))
	next := func(n int) int {
		if len(data) == 0 {
			return rng.Intn(n)
		}
		b := data[0]
		data = data[1:]
		return int(b) % n
	}

	b := trace.NewBuilder("fuzz")
	dirs := []trace.Direction{trace.In, trace.Out, trace.InOut}
	elems := []trace.ElemKind{trace.F64, trace.I32, trace.U8}
	arrays := make([]*trace.Array, 0, 3)
	for i := 0; i < 1+next(3); i++ {
		n := 1 + next(16)
		arrays = append(arrays, b.Alloc(
			string(rune('a'+i)), elems[next(len(elems))], n, dirs[next(len(dirs))]))
	}
	for _, a := range arrays {
		for i := 0; i < a.Len; i++ {
			b.SetF64(a, i, float64(next(251)))
		}
	}

	iters := 1 + next(8)
	for it := 0; it < iters; it++ {
		b.BeginIter()
		// The live-value pool seeds each iteration with constants so the
		// first random op always has operands.
		vals := []trace.Value{b.ConstF(1), b.ConstF(2)}
		pick := func() trace.Value { return vals[next(len(vals))] }
		steps := 1 + next(12)
		for s := 0; s < steps; s++ {
			a := arrays[next(len(arrays))]
			idx := next(a.Len)
			switch next(6) {
			case 0:
				vals = append(vals, b.Load(a, idx))
			case 1:
				b.Store(a, idx, pick())
			case 2:
				vals = append(vals, b.FAdd(pick(), pick()))
			case 3:
				vals = append(vals, b.FMul(pick(), pick()))
			case 4:
				vals = append(vals, b.FSub(pick(), pick()))
			case 5:
				// A dependent chain: load feeding an op feeding a store.
				v := b.FAdd(b.Load(a, idx), pick())
				b.Store(a, idx, v)
				vals = append(vals, v)
			}
		}
	}
	return b.Finish()
}

// FuzzBuilderNeverPanics pins the builder robustness contract: any
// in-contract op/dep sequence builds a trace whose DDDG is schedulable —
// acyclic, topologically ordered, with every dependency edge pointing
// backward — without panics in either layer.
func FuzzBuilderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 128, 7, 9, 200, 13, 42, 42, 42, 1, 0, 255})
	f.Add([]byte("interleaved loads and stores with reuse"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("cap input size; op count is linear in it")
		}
		tr := buildRandom(data)
		if tr.NumNodes() < 0 || tr.Iters < 0 {
			t.Fatalf("nonsense trace: %d nodes, %d iters", tr.NumNodes(), tr.Iters)
		}
		g := ddg.Build(tr)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("unschedulable DDDG: %v", err)
		}
	})
}
