// Tree-height reduction: Aladdin applies standard accelerator design
// optimizations to the DDDG before scheduling, and the one with the
// largest scheduling impact is reassociating serial reduction chains
// (acc = acc op x_i) into balanced trees so unrolled lanes are not
// latency-bound on a single dependence chain.
//
// The transform rewrites the trace in place: within each iteration, the
// chain's operations are moved after the values they will consume and
// rewired into a balanced tree. Memory operations never move relative to
// each other, so the DDDG's memory-dependence semantics are unchanged.
// Reassociation assumes the target functional units tolerate floating-
// point reassociation (as HLS tools do under unsafe-math reductions);
// array contents recorded at trace time are kept as-is.

package trace

// reassocKinds are the associative, commutative operation kinds eligible
// for tree reduction.
var reassocKinds = [NumKinds]bool{
	OpIAdd: true, OpIMul: true, OpIAnd: true, OpIOr: true, OpIXor: true,
	OpFAdd: true, OpFMul: true,
}

// chainInfo is one detected reduction chain.
type chainInfo struct {
	ops    []int32 // chain nodes, ascending
	leaves []int32 // non-chain operands with real dependences, ascending
}

// ReassociateReductions rewrites serial reduction chains of length >= 3
// into balanced trees and returns the number of chains rewritten. The
// node count, iteration labels, and memory behavior are unchanged; only
// compute-node order within iterations and register dependences move.
func ReassociateReductions(tr *Trace) int {
	n := len(tr.Nodes)
	if n == 0 {
		return 0
	}
	// Use counts over register dependences.
	uses := make([]int32, n)
	for i := range tr.Nodes {
		for _, d := range tr.Nodes[i].Deps {
			if d >= 0 {
				uses[d]++
			}
		}
	}

	// consumerOf[i] = sole same-kind consumer of node i, if any.
	inChain := make([]bool, n)
	var chains []chainInfo
	for start := 0; start < n; start++ {
		nd := &tr.Nodes[start]
		if !reassocKinds[nd.Kind] || inChain[start] {
			continue
		}
		// A chain head's operands must not themselves be an extendable
		// same-kind single-use node (otherwise we'd start mid-chain).
		if hasSameKindSingleUseDep(tr, uses, start) {
			continue
		}
		// Walk forward: the next link is the unique consumer of the
		// current tail, same kind, same iteration, tail used exactly once.
		ch := chainInfo{ops: []int32{int32(start)}}
		tail := int32(start)
		for {
			if uses[tail] != 1 {
				break
			}
			next := soleConsumer(tr, tail)
			if next < 0 {
				break
			}
			nn := &tr.Nodes[next]
			if nn.Kind != nd.Kind || nn.Iter != nd.Iter {
				break
			}
			ch.ops = append(ch.ops, next)
			tail = next
		}
		if len(ch.ops) < 3 {
			continue
		}
		// Collect leaves: every dependence of a chain op that is not a
		// chain op itself.
		opSet := map[int32]bool{}
		for _, o := range ch.ops {
			opSet[o] = true
		}
		for _, o := range ch.ops {
			for _, d := range tr.Nodes[o].Deps {
				if d >= 0 && !opSet[d] {
					ch.leaves = append(ch.leaves, d)
				}
			}
		}
		// A balanced tree over k ops consumes k+1 operands; chains whose
		// constant seed shrank the operand count pair what is available.
		for _, o := range ch.ops {
			inChain[o] = true
		}
		chains = append(chains, ch)
	}
	if len(chains) == 0 {
		return 0
	}

	// Move each chain's ops as late as possible within its iteration —
	// but never past a consumer of the chain's tail — via a stable
	// permutation.
	perm := buildPermutation(tr, chains)
	applyPermutation(tr, perm)

	// Rewire each chain (positions changed; remap through perm).
	for _, ch := range chains {
		for i := range ch.ops {
			ch.ops[i] = perm[ch.ops[i]]
		}
		for i := range ch.leaves {
			ch.leaves[i] = perm[ch.leaves[i]]
		}
		rewireBalanced(tr, ch)
	}
	return len(chains)
}

func hasSameKindSingleUseDep(tr *Trace, uses []int32, i int) bool {
	nd := &tr.Nodes[i]
	for _, d := range nd.Deps {
		if d >= 0 && tr.Nodes[d].Kind == nd.Kind && uses[d] == 1 &&
			tr.Nodes[d].Iter == nd.Iter {
			return true
		}
	}
	return false
}

// soleConsumer returns the unique node depending on i, or -1 when the
// consumer is ambiguous (it scans forward; uses[i]==1 guarantees there is
// exactly one).
func soleConsumer(tr *Trace, i int32) int32 {
	for j := i + 1; j < int32(len(tr.Nodes)); j++ {
		for _, d := range tr.Nodes[j].Deps {
			if d == i {
				return j
			}
		}
	}
	return -1
}

// buildPermutation computes new positions: chain operations are deferred
// within their iteration until either a node that depends on the chain's
// tail appears (the whole chain is flushed just before it, so the tail's
// leaves have all been emitted by then) or the iteration ends. Everything
// else keeps its original relative order, so memory-operation order — and
// with it the DDDG's memory dependences — is untouched.
func buildPermutation(tr *Trace, chains []chainInfo) []int32 {
	n := len(tr.Nodes)
	chainOf := make([]int32, n) // -1: not a chain op
	for i := range chainOf {
		chainOf[i] = -1
	}
	tailChain := map[int32]int32{} // tail node -> chain index
	for ci, ch := range chains {
		for _, o := range ch.ops {
			chainOf[o] = int32(ci)
		}
		tailChain[ch.ops[len(ch.ops)-1]] = int32(ci)
	}

	perm := make([]int32, n)
	pos := 0
	flushed := make([]bool, len(chains))
	var flush func(ci int32)
	flush = func(ci int32) {
		if flushed[ci] {
			return
		}
		flushed[ci] = true
		for _, o := range chains[ci].ops {
			// A chain op's leaf may be another chain's tail: flush that
			// chain first so the dependence stays backwards.
			for _, d := range tr.Nodes[o].Deps {
				if d >= 0 {
					if dep, ok := tailChain[d]; ok && dep != ci {
						flush(dep)
					}
				}
			}
			perm[o] = int32(pos)
			pos++
		}
	}

	emitRange := func(lo, hi int) {
		// Reset flushed state scoping is global (chains never span
		// iterations, so each flushes exactly once).
		for i := lo; i < hi; i++ {
			if ci := chainOf[i]; ci >= 0 {
				continue // deferred
			}
			// Flush any chain whose tail this node consumes.
			for _, d := range tr.Nodes[i].Deps {
				if d >= 0 {
					if ci, ok := tailChain[d]; ok {
						flush(ci)
					}
				}
			}
			perm[i] = int32(pos)
			pos++
		}
		// Flush remaining chains of this iteration, in chain order.
		for i := lo; i < hi; i++ {
			if ci := chainOf[i]; ci >= 0 && !flushed[ci] {
				flush(ci)
			}
		}
	}
	lo := 0
	for i := 1; i <= n; i++ {
		if i == n || tr.Nodes[i].Iter != tr.Nodes[lo].Iter {
			emitRange(lo, i)
			lo = i
		}
	}
	return perm
}

func applyPermutation(tr *Trace, perm []int32) {
	n := len(tr.Nodes)
	out := make([]Node, n)
	for i := 0; i < n; i++ {
		nd := tr.Nodes[i]
		for k, d := range nd.Deps {
			if d >= 0 {
				nd.Deps[k] = perm[d]
			}
		}
		out[perm[i]] = nd
	}
	tr.Nodes = out
}

// rewireBalanced assigns a balanced combining tree over the chain's leaves
// to its (now trailing) op nodes. Ops are taken in ascending position;
// operands pair FIFO: leaves first, then intermediate results, which
// yields minimum tree height.
func rewireBalanced(tr *Trace, ch chainInfo) {
	// Operand queue: leaves in ascending order; a chain seeded by a
	// constant has one fewer real operand than 2*ops. Pops advance a head
	// index (as in the BFS queue): reslicing would strand the consumed
	// prefix, forcing the trailing appends to reallocate every few ops.
	queue := append([]int32{}, ch.leaves...)
	qh := 0
	for _, op := range ch.ops {
		nd := &tr.Nodes[op]
		a, b := NoDep, NoDep
		if qh < len(queue) {
			a = queue[qh]
			qh++
		}
		if qh < len(queue) {
			b = queue[qh]
			qh++
		}
		nd.Deps = [3]int32{a, b, NoDep}
		queue = append(queue, op)
	}
}
