// Package stats provides the small numeric and reporting helpers shared by
// the figure harnesses: geometric means, normalization, and fixed-width
// ASCII tables matching the rows/series the paper's plots report.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs; it panics on non-positive
// inputs because every quantity it is applied to (speedups, EDP ratios) is
// positive by construction.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalize divides each element by base.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// AbsPctError returns |got-want|/|want| as a percentage.
func AbsPctError(got, want float64) float64 {
	if want == 0 {
		panic("stats: percent error against zero")
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	writeRow := func(r []string) {
		parts := make([]string, len(r))
		for i, c := range r {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	// The separator spans every column, including columns present only in
	// rows wider than the header.
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
