package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{5}); g != 5 {
		t.Fatalf("geomean(5) = %v", g)
	}
}

func TestGeomeanPanics(t *testing.T) {
	for _, bad := range [][]float64{{}, {1, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geomean(%v) did not panic", bad)
				}
			}()
			Geomean(bad)
		}()
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize([]float64{2, 4, 6}, 2)
	if n[0] != 1 || n[1] != 2 || n[2] != 3 {
		t.Fatalf("normalize = %v", n)
	}
}

func TestAbsPctError(t *testing.T) {
	if e := AbsPctError(95, 100); e != 5 {
		t.Fatalf("error = %v", e)
	}
	if e := AbsPctError(105, 100); e != 5 {
		t.Fatalf("error = %v", e)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 20)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row wrong: %q", lines[2])
	}
}

// Rows may be wider than the header (cmd/dse appends a trailing marker
// column); the separator must still span every rendered column.
func TestTableRenderWideRowSeparator(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row("x", "y", "trailing-marker")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	sep, row := lines[1], lines[2]
	if len(sep) != len(row) {
		t.Fatalf("separator width %d != row width %d:\n%s", len(sep), len(row), out)
	}
	if strings.Trim(sep, "- ") != "" {
		t.Fatalf("separator has stray characters: %q", sep)
	}
}

// Property: geomean lies between min and max, and is scale-equivariant.
func TestGeomeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		if g < mn-1e-9 || g > mx+1e-9 {
			return false
		}
		scaled := Geomean(Normalize(xs, 2))
		return math.Abs(scaled-g/2) < 1e-9*g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
