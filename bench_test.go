package gem5aladdin_test

// The benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating its rows via internal/figures in quick mode) plus
// ablations for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report wall time of regeneration; ablation benchmarks
// additionally report the simulated metric they sweep via b.ReportMetric.

import (
	"fmt"
	"io"
	"testing"

	"gem5aladdin/internal/cpu"
	"gem5aladdin/internal/ddg"
	"gem5aladdin/internal/figures"
	"gem5aladdin/internal/machsuite"
	"gem5aladdin/internal/mem/bus"
	"gem5aladdin/internal/mem/coherence"
	"gem5aladdin/internal/mem/dram"
	"gem5aladdin/internal/sim"
	"gem5aladdin/internal/soc"
	"gem5aladdin/internal/trace"
)

func benchFigure(b *testing.B, fn func(io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Stencil3DSweep(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig1(w, true) })
}

func BenchmarkFig2aMdKnnTimeline(b *testing.B) {
	benchFigure(b, figures.Fig2a)
}

func BenchmarkFig2bBreakdown(b *testing.B) {
	benchFigure(b, figures.Fig2b)
}

func BenchmarkFig4Validation(b *testing.B) {
	benchFigure(b, figures.Fig4)
}

func BenchmarkFig6aDMAOpts(b *testing.B) {
	benchFigure(b, figures.Fig6a)
}

func BenchmarkFig6bParallelism(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig6b(w, true) })
}

func BenchmarkFig7CacheDecomposition(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig7(w, true) })
}

func BenchmarkFig8Pareto(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig8(w, true) })
}

func BenchmarkFig9Kiviat(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig9(w, true) })
}

func BenchmarkFig10EDP(b *testing.B) {
	benchFigure(b, func(w io.Writer) error { return figures.Fig10(w, true) })
}

// --- simulator throughput microbenchmarks ---

var benchGraphs = map[string]*ddg.Graph{}

func graphFor(b *testing.B, name string) *ddg.Graph {
	b.Helper()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	g := ddg.Build(machsuite.MustBuild(name))
	benchGraphs[name] = g
	return g
}

func runOnce(b *testing.B, g *ddg.Graph, cfg soc.Config) *soc.RunResult {
	b.Helper()
	r, err := soc.RunGraph(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkSimulate measures raw simulator throughput per memory system
// (simulated accelerator cycles per wall second reported as cycles/s).
func BenchmarkSimulate(b *testing.B) {
	for _, mem := range []soc.MemKind{soc.Isolated, soc.DMA, soc.Cache} {
		b.Run(mem.String(), func(b *testing.B) {
			g := graphFor(b, "gemm-ncubed")
			cfg := soc.DefaultConfig()
			cfg.Mem = mem
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runOnce(b, g, cfg).Cycles
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}

// BenchmarkTraceAndGraph measures the front-end: kernel tracing plus DDDG
// construction.
func BenchmarkTraceAndGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ddg.Build(machsuite.MustBuild("md-knn"))
	}
}

// --- ablations of DESIGN.md's called-out design choices ---

// BenchmarkAblationDMAChunk sweeps the pipelined-DMA chunk size around the
// paper's 4 KB page-sized choice and reports the md-knn runtime for each.
func BenchmarkAblationDMAChunk(b *testing.B) {
	for _, chunk := range []uint32{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("%dB", chunk), func(b *testing.B) {
			g := graphFor(b, "md-knn")
			cfg := soc.DefaultConfig()
			cfg.DMAChunkBytes = chunk
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationReadyGranularity compares the paper's cache-line
// full/empty-bit granularity against coarse double-buffer-style tracking.
func BenchmarkAblationReadyGranularity(b *testing.B) {
	for _, gran := range []struct {
		name  string
		bytes uint32
	}{{"line32B", 32}, {"chunk4KB", 4096}, {"half-array", 11264}} {
		b.Run(gran.name, func(b *testing.B) {
			g := graphFor(b, "md-knn")
			cfg := soc.DefaultConfig()
			cfg.ReadyBitBytes = gran.bytes
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationMSHRs sweeps hit-under-miss capacity for the cache
// design (spmv is miss-intensive).
func BenchmarkAblationMSHRs(b *testing.B) {
	for _, mshrs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%d", mshrs), func(b *testing.B) {
			g := graphFor(b, "spmv-crs")
			cfg := soc.DefaultConfig()
			cfg.Mem = soc.Cache
			cfg.MSHRs = mshrs
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationPrefetch toggles the strided prefetcher on the
// streaming stencil2d cache design.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			g := graphFor(b, "stencil-stencil2d")
			cfg := soc.DefaultConfig()
			cfg.Mem = soc.Cache
			cfg.Lanes = 16
			cfg.CachePorts = 4
			cfg.CacheKB = 8
			cfg.Prefetch = pf
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationBarrier compares the paper's wave-synchronized lanes
// against free-running lanes on an imbalanced kernel.
func BenchmarkAblationBarrier(b *testing.B) {
	for _, nb := range []bool{false, true} {
		b.Run(fmt.Sprintf("noBarrier=%v", nb), func(b *testing.B) {
			// bfs-bulk's frontier iterations are highly imbalanced, so
			// wave synchronization costs real time there.
			g := graphFor(b, "bfs-bulk")
			cfg := soc.DefaultConfig()
			cfg.Lanes, cfg.Partitions = 16, 16
			cfg.NoWaveBarrier = nb
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationContention loads the bus with a background agent at
// increasing intensity (the shared-resource contention axis).
func BenchmarkAblationContention(b *testing.B) {
	for _, period := range []sim.Tick{0, 2000 * sim.Nanosecond, 500 * sim.Nanosecond} {
		name := "quiet"
		if period != 0 {
			name = fmt.Sprintf("every%dns", period/sim.Nanosecond)
		}
		b.Run(name, func(b *testing.B) {
			g := graphFor(b, "fft-transpose")
			cfg := soc.DefaultConfig()
			if period != 0 {
				cfg.Traffic = &soc.TrafficConfig{Period: period, Bytes: 256}
			}
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationInterleave toggles this implementation's DMA descriptor
// interleaving extension (spmv's indirect gathers are the sensitive case;
// without interleaving the arrival order matches the paper's DMA).
func BenchmarkAblationInterleave(b *testing.B) {
	for _, no := range []bool{false, true} {
		b.Run(fmt.Sprintf("interleave=%v", !no), func(b *testing.B) {
			g := graphFor(b, "spmv-crs")
			cfg := soc.DefaultConfig()
			cfg.NoDMAInterleave = no
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkAblationBusWidth sweeps the system bus width (the Fig 9/10
// contention proxy).
func BenchmarkAblationBusWidth(b *testing.B) {
	for _, bits := range []int{32, 64} {
		b.Run(fmt.Sprintf("%db", bits), func(b *testing.B) {
			g := graphFor(b, "stencil-stencil3d")
			cfg := soc.DefaultConfig()
			cfg.BusWidthBits = bits
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// --- extension experiments (paper's future-work directions) ---

// BenchmarkExtensionCoherentDMA compares software coherence management
// (flush + invalidate) against an IBM Cell-style hardware-coherent DMA
// engine on the flush-heaviest kernel.
func BenchmarkExtensionCoherentDMA(b *testing.B) {
	for _, coherent := range []bool{false, true} {
		name := "software-coherence"
		if coherent {
			name = "hardware-coherent"
		}
		b.Run(name, func(b *testing.B) {
			g := graphFor(b, "stencil-stencil3d")
			cfg := soc.DefaultConfig()
			cfg.CoherentDMA = coherent
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkExtensionMultiAccel measures shared-fabric contention between
// two accelerators (the Fig 3 ACCEL0/ACCEL1 arrangement) against each
// running alone.
func BenchmarkExtensionMultiAccel(b *testing.B) {
	g1 := graphFor(b, "stencil-stencil3d")
	g2 := graphFor(b, "fft-transpose")
	cfg := soc.DefaultConfig()
	cfg.Lanes, cfg.Partitions = 16, 16
	b.Run("alone", func(b *testing.B) {
		var us float64
		for i := 0; i < b.N; i++ {
			us = runOnce(b, g1, cfg).Seconds() * 1e6
		}
		b.ReportMetric(us, "sim_us")
	})
	b.Run("shared-bus", func(b *testing.B) {
		var us float64
		for i := 0; i < b.N; i++ {
			multi, err := soc.RunMulti(
				[]*soc.Compiled{soc.Compile(g1), soc.Compile(g2)},
				[]soc.Config{cfg, cfg})
			if err != nil {
				b.Fatal(err)
			}
			us = multi.Results[0].Seconds() * 1e6
		}
		b.ReportMetric(us, "sim_us")
	})
}

// BenchmarkExtensionRepeatedInvocation compares cold vs steady-state
// invocation latency for the cache interface when inputs stay resident —
// viterbi's HMM parameter tables (6.4 KB) fit the accelerator cache, the
// amortization case DMA cannot exploit.
func BenchmarkExtensionRepeatedInvocation(b *testing.B) {
	g := graphFor(b, "viterbi-viterbi")
	for _, mem := range []soc.MemKind{soc.DMA, soc.Cache} {
		b.Run(mem.String(), func(b *testing.B) {
			cfg := soc.DefaultConfig()
			cfg.Mem = mem
			var cold, steady float64
			for i := 0; i < b.N; i++ {
				rr, err := soc.RunRepeated(soc.Compile(g), cfg, 4, true)
				if err != nil {
					b.Fatal(err)
				}
				cold = rr.Rounds[0].Nanos() / 1e3
				steady = rr.SteadyState().Nanos() / 1e3
			}
			b.ReportMetric(cold, "cold_us")
			b.ReportMetric(steady, "steady_us")
		})
	}
}

// BenchmarkAblationTreeReduction measures Aladdin's tree-height-reduction
// DDDG optimization on gemm's dot-product chains: the serial accumulator
// bounds each iteration at high lane counts until it is reassociated.
func BenchmarkAblationTreeReduction(b *testing.B) {
	for _, reassoc := range []bool{false, true} {
		b.Run(fmt.Sprintf("reassociated=%v", reassoc), func(b *testing.B) {
			tr := machsuite.MustBuild("gemm-ncubed")
			if reassoc {
				if n := trace.ReassociateReductions(tr); n == 0 {
					b.Fatal("no chains rewritten")
				}
			}
			g := ddg.Build(tr)
			cfg := soc.DefaultConfig()
			cfg.Mem = soc.Isolated
			cfg.Lanes, cfg.Partitions = 16, 16
			var us float64
			for i := 0; i < b.N; i++ {
				us = runOnce(b, g, cfg).Seconds() * 1e6
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}

// BenchmarkExtensionModeledFlush measures the per-line flush cost of the
// modeled CPU L1+L2 hierarchy against the paper's characterized 84 ns/line
// analytic constant (the hierarchy is built from the same cache model the
// accelerator uses).
func BenchmarkExtensionModeledFlush(b *testing.B) {
	var perLine float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := dram.New(eng, dram.DefaultConfig())
		sysBus := bus.New(eng, bus.Config{WidthBits: 32, Clock: sim.NewClockHz(100e6)}, d)
		coh := coherence.NewController()
		peer := coh.AddPeer()
		h := cpu.NewHierarchy(eng, cpu.DefaultHierarchyConfig(sim.NewClockHz(667e6)), sysBus, coh, peer)
		h.Warm(0, 16*1024, func() {})
		eng.Run()
		start := eng.Now()
		var end sim.Tick
		h.FlushAll(func() { end = eng.Now() })
		eng.Run()
		perLine = (end - start).Nanos() / 512
	}
	b.ReportMetric(perLine, "ns/line")
	b.ReportMetric(84, "paper_ns/line")
}

// BenchmarkAblationDRAMPolicy compares FCFS vs FR-FCFS memory scheduling
// on the raw controller with two masters interleaving rows of one bank.
// (At the SoC level the paper's 32-bit bus — or the CPU flush — throttles
// long before the DRAM does, so the policy is second-order end to end;
// the unit tests pin that the row-hit reordering itself works.)
func BenchmarkAblationDRAMPolicy(b *testing.B) {
	for _, pol := range []dram.Policy{dram.FCFS, dram.FRFCFS} {
		name := "fcfs"
		if pol == dram.FRFCFS {
			name = "fr-fcfs"
		}
		b.Run(name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cfg := dram.DefaultConfig()
				cfg.Policy = pol
				d := dram.New(eng, cfg)
				var last sim.Tick
				for k := 0; k < 64; k++ {
					d.Access(uint64(k*64), 64, false, func() { last = eng.Now() })
					d.Access(8*2048+uint64(k*64), 64, false, func() { last = eng.Now() })
				}
				eng.Run()
				us = last.Nanos() / 1e3
			}
			b.ReportMetric(us, "sim_us")
		})
	}
}
