// Quickstart: trace a small kernel, simulate it under the three memory
// systems, and print the runtime breakdown each produces.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	// A dot-product kernel: one unrollable iteration per element pair,
	// with the reduction carried in a register chain.
	const n = 1024
	b := gem5aladdin.NewKernel("dot")
	x := b.Alloc("x", gem5aladdin.F64, n, gem5aladdin.In)
	y := b.Alloc("y", gem5aladdin.F64, n, gem5aladdin.In)
	out := b.Alloc("out", gem5aladdin.F64, 1, gem5aladdin.Out)
	for i := 0; i < n; i++ {
		b.SetF64(x, i, float64(i)) // host-side initialization
		b.SetF64(y, i, 0.5)
	}
	// Four partial sums so four lanes can run without a serial chain.
	const part = 4
	acc := make([]gem5aladdin.Value, part)
	for p := range acc {
		acc[p] = b.ConstF(0)
	}
	for i := 0; i < n; i++ {
		b.BeginIter()
		acc[i%part] = b.FAdd(acc[i%part], b.FMul(b.Load(x, i), b.Load(y, i)))
	}
	total := b.FAdd(b.FAdd(acc[0], acc[1]), b.FAdd(acc[2], acc[3]))
	b.Store(out, 0, total)
	tr := b.Finish()

	fmt.Printf("dot product of %d elements = %.1f (%d traced ops)\n\n",
		n, b.GetF64(out, 0), tr.NumNodes())

	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))
	for _, mem := range []gem5aladdin.MemKind{gem5aladdin.Isolated, gem5aladdin.DMA, gem5aladdin.Cache} {
		cfg := gem5aladdin.DefaultConfig()
		cfg.Mem = mem
		res, err := gem5aladdin.Run(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		bd := res.Breakdown
		fmt.Printf("%-9s %8.2f us  (flush %5.2f | dma %5.2f | overlap %5.2f | compute %6.2f)  %.2f mW  EDP %.4g nJ*s\n",
			mem, res.Seconds()*1e6,
			float64(bd.FlushOnly)/1e6, float64(bd.DMAFlush+bd.Idle)/1e6,
			float64(bd.ComputeDMA)/1e6, float64(bd.ComputeOnly)/1e6,
			res.AvgPowerW*1e3, res.EDPJs*1e9)
	}
	fmt.Println("\nThe isolated runtime is what an accelerator designed in a vacuum")
	fmt.Println("predicts; the DMA/cache rows show what the system actually delivers.")
}
