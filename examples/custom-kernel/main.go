// Custom-kernel shows how to bring your own workload to the simulator: a
// histogram kernel with data-dependent (indirect) stores, traced with
// explicit index dependences so the DDDG serializes conflicting bucket
// updates, then swept across lane counts.
//
//	go run ./examples/custom-kernel
package main

import (
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	const (
		n       = 2048
		buckets = 64
	)
	b := gem5aladdin.NewKernel("histogram")
	data := b.Alloc("data", gem5aladdin.I32, n, gem5aladdin.In)
	hist := b.Alloc("hist", gem5aladdin.I32, buckets, gem5aladdin.InOut)

	// Host-side input: a skewed distribution so buckets collide.
	seed := uint64(42)
	vals := make([]int, n)
	for i := range vals {
		seed = seed*6364136223846793005 + 1442695040888963407
		vals[i] = int((seed >> 33) % buckets * uint64(i%3+1) % buckets)
		b.SetInt(data, i, int64(vals[i]))
	}

	one := b.ConstI(1)
	for i := 0; i < n; i++ {
		b.BeginIter()
		v := b.Load(data, i)
		idx := int(v.Int())
		// The loaded value produces the bucket address: pass it as the
		// index dependence so read-modify-writes to the same bucket
		// serialize in the dependence graph.
		cur := b.Load(hist, idx, v)
		b.Store(hist, idx, b.IAdd(cur, one), v)
	}
	tr := b.Finish()

	// Verify functionally against plain Go.
	want := make([]int64, buckets)
	for _, v := range vals {
		want[v]++
	}
	for i := 0; i < buckets; i++ {
		if got := b.GetInt(hist, i); got != want[i] {
			log.Fatalf("hist[%d] = %d, want %d", i, got, want[i])
		}
	}
	fmt.Printf("histogram of %d values into %d buckets traced: %d ops\n\n", n, buckets, tr.NumNodes())

	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))
	fmt.Println("lanes sweep (DMA, all optimizations):")
	var base float64
	for _, lanes := range []int{1, 2, 4, 8, 16} {
		cfg := gem5aladdin.DefaultConfig()
		cfg.Lanes, cfg.Partitions = lanes, lanes
		res, err := gem5aladdin.Run(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds()
		}
		fmt.Printf("  %2d lanes: %8.1f us  speedup %.2fx\n",
			lanes, res.Seconds()*1e6, base/res.Seconds())
	}
	fmt.Println("\nBucket collisions serialize through the DDDG, capping the speedup")
	fmt.Println("well below the lane count — exactly what the dependence-aware")
	fmt.Println("scheduler is for.")
}
