// Dma-vs-cache compares the two CPU-accelerator communication strategies
// of Sec IV across three memory-behavior archetypes: a regular streaming
// kernel (aes), an indirect-gather kernel (spmv), and a strided kernel
// (fft) — showing when push-based DMA or a pull-based coherent cache wins.
//
//	go run ./examples/dma-vs-cache
package main

import (
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	benches := []string{"aes-aes", "spmv-crs", "fft-transpose"}
	fmt.Println("DMA vs cache across memory-behavior archetypes (4 lanes):")
	fmt.Println()
	for _, name := range benches {
		tr, err := gem5aladdin.BuildBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))

		dmaCfg := gem5aladdin.DefaultConfig()
		dmaCfg.Lanes, dmaCfg.Partitions = 4, 4
		dmaRes, err := gem5aladdin.Run(k, dmaCfg)
		if err != nil {
			log.Fatal(err)
		}

		cacheCfg := gem5aladdin.DefaultConfig()
		cacheCfg.Mem = gem5aladdin.Cache
		cacheCfg.Lanes = 4
		cacheCfg.CacheKB = 8
		cacheRes, err := gem5aladdin.Run(k, cacheCfg)
		if err != nil {
			log.Fatal(err)
		}

		winner := "DMA"
		if cacheRes.EDPJs < dmaRes.EDPJs {
			winner = "cache"
		}
		fmt.Printf("%-14s dma: %8.1f us %6.2f mW   cache: %8.1f us %6.2f mW (%d misses, %d TLB walks)   EDP winner: %s\n",
			name,
			dmaRes.Seconds()*1e6, dmaRes.AvgPowerW*1e3,
			cacheRes.Seconds()*1e6, cacheRes.AvgPowerW*1e3,
			cacheRes.Cache.Misses, cacheRes.TLB.Misses, winner)
	}
	fmt.Println()
	fmt.Println("Regular small-footprint kernels favor scratchpads with DMA; strided and")
	fmt.Println("irregular kernels benefit from a cache's on-demand, line-granular fetches.")
}
