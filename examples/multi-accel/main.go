// Multi-accel places two accelerators on one shared system bus and memory
// (the ACCEL0/ACCEL1 arrangement in the paper's Fig 3 SoC diagram) and
// quantifies what shared-resource contention does to each — then shows the
// IBM Cell-style hardware-coherent DMA extension removing the flush cost.
//
//	go run ./examples/multi-accel
package main

import (
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	mdTr, err := gem5aladdin.BuildBenchmark("md-knn")
	if err != nil {
		log.Fatal(err)
	}
	fftTr, err := gem5aladdin.BuildBenchmark("fft-transpose")
	if err != nil {
		log.Fatal(err)
	}
	md := gem5aladdin.Compile(gem5aladdin.BuildGraph(mdTr))
	fft := gem5aladdin.Compile(gem5aladdin.BuildGraph(fftTr))

	cfg := gem5aladdin.DefaultConfig()
	cfg.Lanes, cfg.Partitions = 8, 8

	solo := func(k *gem5aladdin.Kernel) *gem5aladdin.RunResult {
		r, err := gem5aladdin.Run(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	mdSolo, fftSolo := solo(md), solo(fft)

	multi, err := gem5aladdin.RunMulti(
		[]*gem5aladdin.Kernel{md, fft},
		[]gem5aladdin.Config{cfg, cfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Two accelerators sharing one 32-bit bus and DRAM channel:")
	fmt.Printf("  md-knn         alone %8.1f us   shared %8.1f us  (%.2fx slowdown)\n",
		mdSolo.Seconds()*1e6, multi.Results[0].Seconds()*1e6,
		multi.Results[0].Seconds()/mdSolo.Seconds())
	fmt.Printf("  fft-transpose  alone %8.1f us   shared %8.1f us  (%.2fx slowdown)\n",
		fftSolo.Seconds()*1e6, multi.Results[1].Seconds()*1e6,
		multi.Results[1].Seconds()/fftSolo.Seconds())
	fmt.Printf("  makespan %8.1f us\n\n", float64(multi.Makespan)/1e6)

	// Widen the bus: contention eases.
	wide := cfg
	wide.BusWidthBits = 64
	multi64, err := gem5aladdin.RunMulti(
		[]*gem5aladdin.Kernel{md, fft},
		[]gem5aladdin.Config{wide, wide})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("With a 64-bit bus the shared makespan drops to %.1f us.\n\n",
		float64(multi64.Makespan)/1e6)

	// Extension: hardware-coherent DMA (IBM Cell-style) removes the
	// software flush entirely.
	coh := cfg
	coh.CoherentDMA = true
	mdCoh, err := gem5aladdin.Run(md, coh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hardware-coherent DMA (no CPU flush): md-knn %.1f us vs %.1f us, flush-only %.1f -> %.1f us\n",
		mdCoh.Seconds()*1e6, mdSolo.Seconds()*1e6,
		float64(mdSolo.Breakdown.FlushOnly)/1e6, float64(mdCoh.Breakdown.FlushOnly)/1e6)
}
