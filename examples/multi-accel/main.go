// Multi-accel places N accelerators on one shared interconnect and memory
// (the ACCEL0/ACCEL1 arrangement in the paper's Fig 3 SoC diagram) and
// quantifies what shared-resource contention does to each — across all
// three fabric backends (round-robin bus, AXI-like burst crossbar, 2D mesh
// NoC), optionally with a background CPU traffic generator stealing fabric
// cycles. A closing per-fabric lanes sweep shows the co-design point: the
// EDP-optimal datapath chosen in isolation is not the one that wins once
// the accelerators contend.
//
//	go run ./examples/multi-accel [-n 3] [-fabric-list bus,crossbar,mesh] \
//	    [-traffic-period 200] [-traffic-bytes 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	gem5aladdin "gem5aladdin"
)

func main() {
	n := flag.Int("n", 3, "number of accelerators sharing the fabric")
	fabrics := flag.String("fabric-list", "bus,crossbar,mesh",
		"comma-separated fabric backends to compare")
	trafficPeriod := flag.Int("traffic-period", 0,
		"CPU traffic generator period in ns (0 disables the generator)")
	trafficBytes := flag.Int("traffic-bytes", 64,
		"bytes per CPU traffic generator access")
	flag.Parse()

	// N accelerators, cycling through three MachSuite kernels with
	// different memory behavior: bandwidth-hungry streaming (fft),
	// latency-bound gather (md), and a mixed stencil.
	names := []string{"fft-transpose", "md-knn", "stencil-stencil2d"}
	kernels := make([]*gem5aladdin.Kernel, *n)
	labels := make([]string, *n)
	for i := range kernels {
		name := names[i%len(names)]
		tr, err := gem5aladdin.BuildBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		kernels[i] = gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))
		labels[i] = name
	}

	base := gem5aladdin.DefaultConfig()
	base.Lanes, base.Partitions = 8, 8
	if *trafficPeriod > 0 {
		base.Traffic = &gem5aladdin.TrafficConfig{
			Period: gem5aladdin.Tick(*trafficPeriod) * gem5aladdin.Nanosecond,
			Bytes:  uint32(*trafficBytes),
		}
		fmt.Printf("CPU traffic generator: %d B every %d ns on the shared fabric\n\n",
			*trafficBytes, *trafficPeriod)
	}

	var kinds []gem5aladdin.FabricKind
	for _, s := range strings.Split(*fabrics, ",") {
		k, err := gem5aladdin.ParseFabricKind(strings.TrimSpace(s))
		if err != nil {
			log.Fatal(err)
		}
		kinds = append(kinds, k)
	}

	// Solo baselines (on the default bus, no contention).
	solo := make([]*gem5aladdin.RunResult, *n)
	for i, k := range kernels {
		r, err := gem5aladdin.Run(k, base)
		if err != nil {
			log.Fatal(err)
		}
		solo[i] = r
	}

	fmt.Printf("%d accelerators sharing one fabric (slowdown vs solo on the bus):\n", *n)
	for _, kind := range kinds {
		cfg := base
		cfg.Fabric.Kind = kind
		cfgs := make([]gem5aladdin.Config, *n)
		for i := range cfgs {
			cfgs[i] = cfg
		}
		multi, err := gem5aladdin.RunMulti(kernels, cfgs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s makespan %8.1f us  ", kind, float64(multi.Makespan)/1e6)
		for i, r := range multi.Results {
			fmt.Printf(" %s %.2fx", labels[i][:strings.IndexByte(labels[i], '-')],
				r.Seconds()/solo[i].Seconds())
		}
		fmt.Println()
	}

	// The co-design argument: sweep the datapath width of accelerator 0 in
	// isolation and under contention, per fabric. The EDP-optimal lane
	// count can shift once the fabric is shared — an isolated sweep
	// over-provisions a datapath the contended interconnect cannot feed.
	fmt.Println("\nEDP-optimal lanes for", labels[0], "(isolated vs sharing the fabric):")
	lanes := []int{1, 2, 4, 8, 16}
	for _, kind := range kinds {
		isoBest, isoEDP := 0, 0.0
		shBest, shEDP := 0, 0.0
		for _, l := range lanes {
			cfg := base
			cfg.Fabric.Kind = kind
			cfg.Lanes = l
			r, err := gem5aladdin.Run(kernels[0], cfg)
			if err != nil {
				log.Fatal(err)
			}
			if isoBest == 0 || r.EDPJs < isoEDP {
				isoBest, isoEDP = l, r.EDPJs
			}
			cfgs := make([]gem5aladdin.Config, *n)
			for i := range cfgs {
				cfgs[i] = cfg
				cfgs[i].Lanes = base.Lanes
			}
			cfgs[0].Lanes = l
			multi, err := gem5aladdin.RunMulti(kernels, cfgs)
			if err != nil {
				log.Fatal(err)
			}
			if shBest == 0 || multi.Results[0].EDPJs < shEDP {
				shBest, shEDP = l, multi.Results[0].EDPJs
			}
		}
		marker := ""
		if isoBest != shBest {
			marker = "  <- contention shifts the optimum"
		}
		fmt.Printf("  %-8s isolated %2d lanes, contended %2d lanes%s\n",
			kind, isoBest, shBest, marker)
	}
}
