// Codesign reruns the paper's motivating experiment (Fig 1): sweep the
// stencil3d design space twice — once as an isolated accelerator and once
// inside the SoC with DMA data movement — and show how the EDP-optimal
// microarchitecture shifts toward a leaner design.
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	tr, err := gem5aladdin.BuildBenchmark("stencil-stencil3d")
	if err != nil {
		log.Fatal(err)
	}
	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))

	lanes := []int{1, 2, 4, 8, 16}
	banks := []int{1, 2, 4, 8, 16}

	type point struct {
		lanes, banks int
		res          *gem5aladdin.RunResult
	}
	sweep := func(mem gem5aladdin.MemKind) (best point, all []point) {
		for _, l := range lanes {
			for _, p := range banks {
				cfg := gem5aladdin.DefaultConfig()
				cfg.Mem = mem
				cfg.Lanes = l
				cfg.Partitions = p
				res, err := gem5aladdin.Run(k, cfg)
				if err != nil {
					log.Fatal(err)
				}
				pt := point{l, p, res}
				all = append(all, pt)
				if best.res == nil || res.EDPJs < best.res.EDPJs {
					best = pt
				}
			}
		}
		return best, all
	}

	isoBest, _ := sweep(gem5aladdin.Isolated)
	coBest, _ := sweep(gem5aladdin.DMA)

	fmt.Println("stencil3d, 25-point design space (lanes x scratchpad banks):")
	fmt.Printf("  isolated EDP optimum:    %2d lanes x %2d banks  (%6.1f us, %.2f mW)\n",
		isoBest.lanes, isoBest.banks, isoBest.res.Seconds()*1e6, isoBest.res.AvgPowerW*1e3)
	fmt.Printf("  co-designed EDP optimum: %2d lanes x %2d banks  (%6.1f us, %.2f mW)\n",
		coBest.lanes, coBest.banks, coBest.res.Seconds()*1e6, coBest.res.AvgPowerW*1e3)

	// Deploy the isolated winner in the real system and compare.
	cfg := gem5aladdin.DefaultConfig()
	cfg.Lanes, cfg.Partitions = isoBest.lanes, isoBest.banks
	naive, err := gem5aladdin.Run(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  isolated design deployed in-system: %6.1f us, %.2f mW, EDP %.4g nJ*s\n",
		naive.Seconds()*1e6, naive.AvgPowerW*1e3, naive.EDPJs*1e9)
	fmt.Printf("  co-designed optimum:                %6.1f us, %.2f mW, EDP %.4g nJ*s\n",
		coBest.res.Seconds()*1e6, coBest.res.AvgPowerW*1e3, coBest.res.EDPJs*1e9)
	fmt.Printf("\n  co-design EDP improvement: %.2fx\n", naive.EDPJs/coBest.res.EDPJs)
}
