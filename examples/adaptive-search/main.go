// Adaptive-search walks the spmv design space with the Pareto-guided
// search instead of an exhaustive grid: a 900-point DMA space is recovered
// to a near-identical front from a 90-point budget — the 10x-fewer-points
// contract the search layer is built around. The run is deterministic:
// the same seed always evaluates the same points and prints the same front.
//
//	go run ./examples/adaptive-search
package main

import (
	"context"
	"fmt"
	"log"

	gem5aladdin "gem5aladdin"
)

func main() {
	tr, err := gem5aladdin.BuildBenchmark("spmv-crs")
	if err != nil {
		log.Fatal(err)
	}
	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))

	// The space: every axis the search may vary, over a base config that
	// fixes everything else. 5*5*3*2*2*3 = 900 points — small enough to
	// check exhaustively here, and the same shape scales to 10^5-10^6
	// points where a grid is simply infeasible.
	base := gem5aladdin.DefaultConfig()
	base.Mem = gem5aladdin.DMA
	space := gem5aladdin.SearchSpace{
		Base: base,
		Axes: []gem5aladdin.SearchAxis{
			{Name: "lanes", Values: []int{1, 2, 4, 8, 16}},
			{Name: "partitions", Values: []int{1, 2, 4, 8, 16}},
			{Name: "spad_ports", Values: []int{1, 2, 4}},
			{Name: "pipelined_dma", Values: []int{0, 1}},
			{Name: "dma_triggered", Values: []int{0, 1}},
			{Name: "dma_chunk", Values: []int{1024, 4096, 16384}},
		},
	}

	res, err := gem5aladdin.Search(context.Background(), k, space, gem5aladdin.SearchOptions{
		Seed:        1,
		Budget:      90, // a tenth of the space
		InitSamples: 24,
		RoundSize:   8,
		Progress: func(p gem5aladdin.SearchProgress) {
			fmt.Printf("  round %d: %d evaluated, front size %d\n",
				p.Round, p.Evaluated, p.FrontSize)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsearched %d of %d points (%d rounds, converged=%v); recovered front:\n\n",
		res.Evaluated, res.SpaceSize, res.Rounds, res.Converged)
	for _, p := range res.Front {
		fmt.Printf("  %2d lanes, %2d banks x %d ports: %7.2f us, %6.3f mW\n",
			p.Cfg.Lanes, p.Cfg.Partitions, p.Cfg.SpadPorts,
			p.Res.Seconds()*1e6, p.Res.AvgPowerW*1e3)
	}
	best, _ := gem5aladdin.EDPOptimal(res.Front)
	fmt.Printf("\nEDP optimum: %d lanes, %d banks x %d ports (%.4f nJ*s)\n",
		best.Cfg.Lanes, best.Cfg.Partitions, best.Cfg.SpadPorts, best.Res.EDPJs*1e9)

	// The honesty check (this space is small enough to afford it): sweep
	// all 900 points and compare front quality by hypervolume.
	var cfgs []gem5aladdin.Config
	for r := uint64(0); r < res.SpaceSize; r++ {
		cfgs = append(cfgs, space.Config(space.Unrank(r)))
	}
	full, err := gem5aladdin.Sweep(context.Background(), k, cfgs, gem5aladdin.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	exact := gem5aladdin.ParetoFront(full)
	var refS, refW float64
	for _, p := range full {
		if s := p.Res.Seconds(); s > refS {
			refS = s
		}
		if w := p.Res.AvgPowerW; w > refW {
			refW = w
		}
	}
	refS, refW = refS*1.01, refW*1.01
	fmt.Printf("\nexhaustive check: search hypervolume %.3g vs exact %.3g (%d vs %d points simulated)\n",
		res.Front.Hypervolume(refS, refW), exact.Hypervolume(refS, refW),
		res.Simulated, len(cfgs))
}
