package gem5aladdin_test

import (
	"bytes"
	"fmt"
	"testing"

	gem5aladdin "gem5aladdin"
)

// buildSaxpy traces y = a*x + y over n elements.
func buildSaxpy(n int) (*gem5aladdin.Trace, []float64) {
	b := gem5aladdin.NewKernel("saxpy")
	x := b.Alloc("x", gem5aladdin.F64, n, gem5aladdin.In)
	y := b.Alloc("y", gem5aladdin.F64, n, gem5aladdin.InOut)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		b.SetF64(x, i, float64(i))
		b.SetF64(y, i, 1)
		want[i] = 2*float64(i) + 1
	}
	a := b.ConstF(2)
	for i := 0; i < n; i++ {
		b.BeginIter()
		b.Store(y, i, b.FAdd(b.FMul(a, b.Load(x, i)), b.Load(y, i)))
	}
	tr := b.Finish()
	for i := 0; i < n; i++ {
		if got := b.GetF64(y, i); got != want[i] {
			panic(fmt.Sprintf("saxpy[%d] = %v, want %v", i, got, want[i]))
		}
	}
	return tr, want
}

func TestPublicAPIRun(t *testing.T) {
	tr, _ := buildSaxpy(256)
	for _, mem := range []gem5aladdin.MemKind{gem5aladdin.Isolated, gem5aladdin.DMA, gem5aladdin.Cache} {
		cfg := gem5aladdin.DefaultConfig()
		cfg.Mem = mem
		res, err := gem5aladdin.RunTrace(tr, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mem, err)
		}
		if res.Runtime == 0 || res.EDPJs <= 0 {
			t.Fatalf("%v: empty result", mem)
		}
	}
}

func TestPublicAPIGraphReuse(t *testing.T) {
	tr, _ := buildSaxpy(128)
	g := gem5aladdin.BuildGraph(tr)
	cfg := gem5aladdin.DefaultConfig()
	a, err := gem5aladdin.RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gem5aladdin.RunGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Fatal("graph reuse nondeterministic")
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	names := gem5aladdin.Benchmarks()
	if len(names) != 19 {
		t.Fatalf("benchmarks = %v", names)
	}
	tr, err := gem5aladdin.BuildBenchmark("kmp-kmp")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() == 0 {
		t.Fatal("empty benchmark trace")
	}
	if _, err := gem5aladdin.BuildBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// Example demonstrates the quickstart flow: trace a kernel, simulate it
// under DMA, and inspect the movement/compute split.
func Example() {
	b := gem5aladdin.NewKernel("scale")
	x := b.Alloc("x", gem5aladdin.F64, 64, gem5aladdin.In)
	y := b.Alloc("y", gem5aladdin.F64, 64, gem5aladdin.Out)
	for i := 0; i < 64; i++ {
		b.SetF64(x, i, float64(i))
	}
	two := b.ConstF(2)
	for i := 0; i < 64; i++ {
		b.BeginIter()
		b.Store(y, i, b.FMul(two, b.Load(x, i)))
	}
	res, err := gem5aladdin.RunTrace(b.Finish(), gem5aladdin.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Runtime > 0, res.Breakdown.Total() == res.Runtime)
	// Output: true true
}

func TestPublicAPIRunRepeated(t *testing.T) {
	tr, _ := buildSaxpy(256)
	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))
	cfg := gem5aladdin.DefaultConfig()
	cfg.Mem = gem5aladdin.Cache
	rr, err := gem5aladdin.RunRepeated(k, cfg, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rounds) != 3 || rr.Total == 0 {
		t.Fatalf("repeat result: %+v", rr.Rounds)
	}
	if rr.SteadyState() > rr.Rounds[0] {
		t.Fatal("steady state slower than cold round with reused inputs")
	}
}

func TestPublicAPIRunMulti(t *testing.T) {
	tr, _ := buildSaxpy(128)
	k := gem5aladdin.Compile(gem5aladdin.BuildGraph(tr))
	cfg := gem5aladdin.DefaultConfig()
	multi, err := gem5aladdin.RunMulti([]*gem5aladdin.Kernel{k, k},
		[]gem5aladdin.Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != 2 || multi.Makespan == 0 {
		t.Fatal("multi result incomplete")
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr, _ := buildSaxpy(64)
	var buf bytes.Buffer
	if err := gem5aladdin.SaveTrace(tr, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := gem5aladdin.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tr.NumNodes() {
		t.Fatal("trace round trip lost nodes")
	}
	// The loaded trace simulates identically.
	a, err := gem5aladdin.RunTrace(tr, gem5aladdin.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := gem5aladdin.RunTrace(got, gem5aladdin.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Fatalf("loaded trace runs differently: %v vs %v", a.Runtime, b.Runtime)
	}
}

func TestPublicAPIReassociate(t *testing.T) {
	// A saxpy has no >=3 chains; build a dot product instead.
	b := gem5aladdin.NewKernel("dot")
	x := b.Alloc("x", gem5aladdin.F64, 64, gem5aladdin.In)
	o := b.Alloc("o", gem5aladdin.F64, 1, gem5aladdin.Out)
	for i := 0; i < 64; i++ {
		b.SetF64(x, i, 1)
	}
	b.BeginIter()
	acc := b.ConstF(0)
	for i := 0; i < 64; i++ {
		acc = b.FAdd(acc, b.Load(x, i))
	}
	b.Store(o, 0, acc)
	tr := b.Finish()
	g0 := gem5aladdin.BuildGraph(tr)
	critBefore := g0.CritPath
	if n := gem5aladdin.ReassociateReductions(tr); n != 1 {
		t.Fatalf("chains = %d", n)
	}
	g1 := gem5aladdin.BuildGraph(tr)
	if g1.CritPath >= critBefore {
		t.Fatalf("critical path %d -> %d; expected reduction", critBefore, g1.CritPath)
	}
}
